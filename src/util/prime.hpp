// Primality testing and prime generation for Rabin-Karp moduli.
//
// The paper's map phase (section III-A) hashes every prefix/suffix with a
// rolling hash whose modulus is "a large prime number" and whose radix is
// "a small prime larger than the alphabet size"; LaSAGNA pairs two such
// hashes into a 128-bit fingerprint. These helpers pick those primes.
#pragma once

#include <cstdint>

namespace lasagna::util {

/// Deterministic Miller-Rabin for 64-bit integers (exact, not probabilistic).
[[nodiscard]] bool is_prime(std::uint64_t n);

/// Smallest prime >= n (n <= 2^63 for sane use; throws if search overflows).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n);

/// A pseudo-random prime in [lo, hi], reproducible from `seed`.
/// Used to draw independent fingerprint moduli. Throws if the range is empty
/// or contains no prime reachable within the search budget.
[[nodiscard]] std::uint64_t random_prime(std::uint64_t lo, std::uint64_t hi,
                                         std::uint64_t seed);

}  // namespace lasagna::util
