// Per-phase statistics collected by the pipeline and reported by benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace lasagna::util {

/// Everything we record about one pipeline phase (map/sort/reduce/...).
struct PhaseStats {
  std::string name;
  double wall_seconds = 0.0;     ///< measured wall-clock time
  double modeled_seconds = 0.0;  ///< modeled time (device+disk+network model)
  double device_seconds = 0.0;   ///< modeled device component
  double disk_seconds = 0.0;     ///< modeled disk component
  double host_seconds = 0.0;     ///< modeled host component (CPU staging)
  /// (device + disk + host) / modeled. 1.0 for serial phases; approaches
  /// the lane count when an overlapped phase hides all lanes but the
  /// slowest behind each other.
  double overlap_efficiency = 1.0;
  std::uint64_t peak_host_bytes = 0;
  std::uint64_t peak_device_bytes = 0;
  std::uint64_t disk_bytes_read = 0;
  std::uint64_t disk_bytes_written = 0;
  // Faults the io::FaultInjector fired during the phase (all zero unless an
  // injector is installed).
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_retried = 0;
  std::uint64_t faults_fatal = 0;
  /// Counters from the global obs::MetricsRegistry that moved during the
  /// phase, as name-sorted (name, delta) pairs.
  obs::MetricsRegistry::Snapshot metrics = {};
  /// True when the phase was restored from a checkpoint instead of run.
  bool resumed = false;
};

/// Ordered collection of phase stats for one pipeline run.
class RunStats {
 public:
  void add(PhaseStats phase) { phases_.push_back(std::move(phase)); }

  [[nodiscard]] const std::vector<PhaseStats>& phases() const {
    return phases_;
  }

  /// Find a phase by name; throws std::out_of_range if absent.
  [[nodiscard]] const PhaseStats& phase(const std::string& name) const;
  [[nodiscard]] bool has_phase(const std::string& name) const;

  [[nodiscard]] double total_wall_seconds() const;
  [[nodiscard]] double total_modeled_seconds() const;
  [[nodiscard]] std::uint64_t total_disk_bytes() const;

  /// Phases restored from a checkpoint instead of executed.
  [[nodiscard]] unsigned resumed_phase_count() const;

  /// Render an aligned table like the paper's Tables II/III.
  [[nodiscard]] std::string to_table() const;

 private:
  std::vector<PhaseStats> phases_;
};

}  // namespace lasagna::util
