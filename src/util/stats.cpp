#include "util/stats.hpp"

#include <array>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/timer.hpp"

namespace lasagna::util {

const PhaseStats& RunStats::phase(const std::string& name) const {
  for (const auto& p : phases_) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("RunStats: no phase named " + name);
}

bool RunStats::has_phase(const std::string& name) const {
  for (const auto& p : phases_) {
    if (p.name == name) return true;
  }
  return false;
}

double RunStats::total_wall_seconds() const {
  double total = 0.0;
  for (const auto& p : phases_) total += p.wall_seconds;
  return total;
}

double RunStats::total_modeled_seconds() const {
  double total = 0.0;
  for (const auto& p : phases_) total += p.modeled_seconds;
  return total;
}

std::uint64_t RunStats::total_disk_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : phases_) {
    total += p.disk_bytes_read + p.disk_bytes_written;
  }
  return total;
}

unsigned RunStats::resumed_phase_count() const {
  unsigned count = 0;
  for (const auto& p : phases_) {
    if (p.resumed) ++count;
  }
  return count;
}

std::string RunStats::to_table() const {
  std::ostringstream out;
  std::array<char, 320> line{};
  std::uint64_t injected = 0;
  std::uint64_t retried = 0;
  std::uint64_t fatal = 0;
  out << "phase       wall        modeled     device      disk        "
         "host        overlap  peak-host   peak-dev    disk-read   "
         "disk-write\n";
  for (const auto& p : phases_) {
    std::snprintf(
        line.data(), line.size(),
        "%-11s %-11s %-11s %-11s %-11s %-11s %-8.2f %-11s %-11s %-11s "
        "%-11s\n",
        p.name.c_str(), format_duration(p.wall_seconds).c_str(),
        format_duration(p.modeled_seconds).c_str(),
        format_duration(p.device_seconds).c_str(),
        format_duration(p.disk_seconds).c_str(),
        format_duration(p.host_seconds).c_str(), p.overlap_efficiency,
        format_bytes(p.peak_host_bytes).c_str(),
        format_bytes(p.peak_device_bytes).c_str(),
        format_bytes(p.disk_bytes_read).c_str(),
        format_bytes(p.disk_bytes_written).c_str());
    out << line.data();
    injected += p.faults_injected;
    retried += p.faults_retried;
    fatal += p.faults_fatal;
  }
  std::snprintf(line.data(), line.size(), "%-11s %-11s %-11s\n", "total",
                format_duration(total_wall_seconds()).c_str(),
                format_duration(total_modeled_seconds()).c_str());
  out << line.data();
  if (injected + retried + fatal > 0) {
    std::snprintf(line.data(), line.size(),
                  "faults: %llu injected, %llu retried, %llu fatal\n",
                  static_cast<unsigned long long>(injected),
                  static_cast<unsigned long long>(retried),
                  static_cast<unsigned long long>(fatal));
    out << line.data();
  }
  return out.str();
}

}  // namespace lasagna::util
