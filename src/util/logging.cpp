#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <utility>

#include "obs/trace.hpp"

namespace lasagna::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

// Guarded by g_sink_mutex. A plain pointer-to-function-object (not a bare
// std::function global) so the default stderr sink needs no initialization
// order guarantees.
LogSink g_sink;  // empty = stderr default

void stderr_sink(const LogRecord& record) {
  const std::time_t secs =
      std::chrono::system_clock::to_time_t(record.time);
  const auto subsec = std::chrono::duration_cast<std::chrono::milliseconds>(
                          record.time.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  std::fprintf(stderr, "[%s %02d:%02d:%02d.%03d t%llu] %s\n",
               log_level_name(record.level), tm.tm_hour, tm.tm_min,
               tm.tm_sec, static_cast<int>(subsec),
               static_cast<unsigned long long>(record.thread_id),
               record.message.c_str());
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

std::uint64_t current_thread_id() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  LogRecord record;
  record.level = level;
  record.message = msg;
  record.time = std::chrono::system_clock::now();
  record.thread_id = current_thread_id();

  // Warnings and errors become instant events so a trace shows *where* in
  // the timeline something went wrong (wall clock only — log timing is
  // inherently nondeterministic).
  if (level >= LogLevel::kWarn) {
    if (obs::Tracer* tracer = obs::Tracer::active()) {
      tracer->add_instant(
          tracer->track("log"),
          std::string(log_level_name(level)) + ": " + msg,
          {{"thread", static_cast<std::int64_t>(record.thread_id)}});
    }
  }

  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(record);
  } else {
    stderr_sink(record);
  }
}

ScopedLogSink::ScopedLogSink() {
  set_log_sink([this](const LogRecord& record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
  });
}

ScopedLogSink::~ScopedLogSink() { set_log_sink(LogSink()); }

std::vector<LogRecord> ScopedLogSink::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace lasagna::util
