// Synthetic reference genomes.
//
// We do not ship the paper's SRA datasets, so experiments sequence synthetic
// genomes instead. Genomes are generated segment-by-segment; with probability
// `repeat_fraction` a segment is copied from earlier material (optionally
// reverse-complemented), giving the repeat structure that makes real string
// graphs interesting (transitive edges, ambiguous joins).
#pragma once

#include <cstdint>
#include <string>

namespace lasagna::seq {

struct GenomeSpec {
  std::uint64_t length = 100000;  ///< bases
  std::uint64_t seed = 1;
  double repeat_fraction = 0.0;   ///< fraction of segments copied from earlier
  unsigned repeat_segment = 500;  ///< segment size for repeat copying
};

/// Generate a genome according to `spec`. Deterministic in the seed.
[[nodiscard]] std::string generate_genome(const GenomeSpec& spec);

/// Uniform random ACGT string (no repeat structure).
[[nodiscard]] std::string random_genome(std::uint64_t length,
                                        std::uint64_t seed);

}  // namespace lasagna::seq
