// Scaled stand-ins for the paper's evaluation datasets (Table I).
//
// The paper assembles four Illumina datasets (9.2 GB - 398 GB). We cannot
// ship those, so each descriptor here reproduces the dataset's *shape* —
// read length, minimum overlap (as suggested by SGA and quoted in section
// IV-A), and coverage — at a size divided by `scale`. Because every
// algorithm in LaSAGNA is driven by the ratios dataset/host-memory and
// host-memory/device-memory, scaling data and memory budgets together
// preserves disk-pass and merge-pass counts, and hence the phase profile.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace lasagna::seq {

struct DatasetSpec {
  std::string name;
  unsigned read_length = 0;
  unsigned min_overlap = 0;        ///< l_min from the paper (SGA-suggested)
  std::uint64_t paper_reads = 0;   ///< reads in the real dataset
  std::uint64_t paper_bases = 0;   ///< bases in the real dataset
  std::uint64_t genome_length = 0; ///< synthetic genome length (scaled)
  std::uint64_t read_count = 0;    ///< simulated reads (scaled)
  double repeat_fraction = 0.05;   ///< repeat content of the synthetic genome
  std::uint64_t seed = 0;

  [[nodiscard]] double coverage() const {
    return static_cast<double>(read_count) * read_length /
           static_cast<double>(genome_length);
  }
  [[nodiscard]] std::uint64_t total_bases() const {
    return read_count * read_length;
  }
};

/// The paper's four datasets, divided by `scale` (default 2^12 = 4096).
/// With the default, H.Genome becomes ~30 M bases / ~305 K reads.
[[nodiscard]] std::vector<DatasetSpec> paper_datasets(double scale = 4096.0);

/// One dataset by name ("H.Chr14", "Bumblebee", "Parakeet", "H.Genome").
[[nodiscard]] DatasetSpec paper_dataset(const std::string& name,
                                        double scale = 4096.0);

/// Generate the synthetic genome + FASTQ for a spec into `dir`;
/// returns the FASTQ path. Skips generation if the file already exists
/// with a matching size marker.
std::filesystem::path materialize_dataset(const DatasetSpec& spec,
                                          const std::filesystem::path& dir);

/// The synthetic reference genome a spec's reads are simulated from
/// (deterministic in the spec), for quality evaluation of the assembled
/// contigs against the ground truth.
[[nodiscard]] std::string dataset_reference(const DatasetSpec& spec);

}  // namespace lasagna::seq
