// DNA alphabet utilities: 2-bit encoding and Watson-Crick complements.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace lasagna::seq {

/// 2-bit base codes. Order chosen so that complement(code) == code ^ 3.
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

/// Encode an IUPAC character; A/C/G/T (either case) only.
/// Returns false for anything else (N etc.), leaving `out` untouched.
[[nodiscard]] bool try_encode_base(char c, Base& out);

/// Encode, throwing std::invalid_argument on non-ACGT input.
[[nodiscard]] Base encode_base(char c);

/// Decode a 2-bit code to an uppercase character.
[[nodiscard]] char decode_base(Base b);

/// Watson-Crick complement of one base (A<->T, C<->G).
[[nodiscard]] constexpr Base complement(Base b) {
  return static_cast<Base>(static_cast<std::uint8_t>(b) ^ 3u);
}

/// Complement of a character (ACGT, case-insensitive; returns uppercase).
[[nodiscard]] char complement(char c);

/// Reverse complement of a sequence string.
[[nodiscard]] std::string reverse_complement(std::string_view s);

/// True if every character is A/C/G/T (either case).
[[nodiscard]] bool is_acgt(std::string_view s);

/// Replace non-ACGT characters with a deterministic pseudo-random base
/// (seeded by position), as assembler preprocessing commonly does with 'N'.
[[nodiscard]] std::string sanitize(std::string_view s, std::uint64_t seed);

}  // namespace lasagna::seq
