#include "seq/dna.hpp"

#include <algorithm>
#include <stdexcept>

namespace lasagna::seq {

bool try_encode_base(char c, Base& out) {
  switch (c) {
    case 'A':
    case 'a':
      out = Base::A;
      return true;
    case 'C':
    case 'c':
      out = Base::C;
      return true;
    case 'G':
    case 'g':
      out = Base::G;
      return true;
    case 'T':
    case 't':
      out = Base::T;
      return true;
    default:
      return false;
  }
}

Base encode_base(char c) {
  Base b;
  if (!try_encode_base(c, b)) {
    throw std::invalid_argument(std::string("not an ACGT base: '") + c + "'");
  }
  return b;
}

char decode_base(Base b) {
  static constexpr char kChars[4] = {'A', 'C', 'G', 'T'};
  return kChars[static_cast<std::uint8_t>(b) & 3u];
}

char complement(char c) { return decode_base(complement(encode_base(c))); }

std::string reverse_complement(std::string_view s) {
  std::string out(s.size(), '\0');
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[s.size() - 1 - i] = complement(s[i]);
  }
  return out;
}

bool is_acgt(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    Base b;
    return try_encode_base(c, b);
  });
}

std::string sanitize(std::string_view s, std::uint64_t seed) {
  std::string out(s);
  for (std::size_t i = 0; i < out.size(); ++i) {
    Base b;
    if (!try_encode_base(out[i], b)) {
      // splitmix64-style position hash for a reproducible substitute base
      std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (i + 1);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      out[i] = decode_base(static_cast<Base>((x >> 33) & 3u));
    }
  }
  return out;
}

}  // namespace lasagna::seq
