// Background-threaded read-batch prefetch: the input half of the map
// phase's software pipeline.
//
// AsyncReadBatchStream runs a ReadBatchStream on a private thread that
// decodes FASTQ/FASTA batches into a bounded queue, so disk reads and
// parsing overlap the consumer's (device) work while batch boundaries,
// read ids and read contents are identical to the synchronous stream's.
// Background exceptions (I/O faults, malformed input) are rethrown from
// next() at the point in the stream where they occurred.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "seq/read_store.hpp"

namespace lasagna::seq {

class AsyncReadBatchStream {
 public:
  AsyncReadBatchStream(std::vector<std::filesystem::path> paths,
                       std::uint64_t max_batch_bases,
                       std::size_t max_queued_batches = 2)
      : stream_(std::move(paths), max_batch_bases),  // open errors throw here
        max_queued_(std::max<std::size_t>(1, max_queued_batches)),
        worker_([this] { run(); }) {}

  ~AsyncReadBatchStream() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  AsyncReadBatchStream(const AsyncReadBatchStream&) = delete;
  AsyncReadBatchStream& operator=(const AsyncReadBatchStream&) = delete;

  /// Fill the next batch; returns false when the input is exhausted.
  /// Rethrows any exception the prefetch thread hit.
  bool next(ReadBatch& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty() || done_; });
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      cv_.notify_all();  // queue slot freed for the prefetcher
      return true;
    }
    if (error_ != nullptr) std::rethrow_exception(error_);
    return false;
  }

 private:
  void run() {
    try {
      ReadBatch batch;
      while (true) {
        // Per-batch decode span: wall time the prefetch thread spends in
        // disk reads + FASTQ parsing for one batch.
        obs::WallSpan span;
        if (obs::Tracer* tracer = obs::Tracer::active()) {
          span = obs::WallSpan(*tracer, tracer->track("io.fastq"), "decode");
        }
        if (!stream_.next(batch)) break;
        span.add_arg("first_id", static_cast<std::int64_t>(batch.first_id));
        span.add_arg("reads", static_cast<std::int64_t>(batch.size()));
        span.finish();
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock,
                 [this] { return queue_.size() < max_queued_ || stop_; });
        if (stop_) return;
        queue_.push_back(std::move(batch));
        cv_.notify_all();
        batch = ReadBatch{};
      }
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
      cv_.notify_all();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      error_ = std::current_exception();
      done_ = true;
      cv_.notify_all();
    }
  }

  ReadBatchStream stream_;  // touched only by worker_ after construction
  std::size_t max_queued_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<ReadBatch> queue_;
  bool done_ = false;
  bool stop_ = false;
  std::exception_ptr error_;

  std::thread worker_;  // last member: starts after everything is built
};

}  // namespace lasagna::seq
