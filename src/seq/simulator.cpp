#include "seq/simulator.hpp"

#include <fstream>
#include <random>
#include <stdexcept>

#include "seq/dna.hpp"

namespace lasagna::seq {

namespace {

std::uint64_t read_count_for(std::string_view genome,
                             const SequencingSpec& spec) {
  if (spec.read_length == 0 || genome.size() < spec.read_length) {
    throw std::invalid_argument("simulate_reads: genome shorter than reads");
  }
  return static_cast<std::uint64_t>(
      spec.coverage * static_cast<double>(genome.size()) /
      static_cast<double>(spec.read_length));
}

SimulatedRead sample_one(std::string_view genome, const SequencingSpec& spec,
                         std::mt19937_64& rng) {
  std::uniform_int_distribution<std::uint64_t> pos_dist(
      0, genome.size() - spec.read_length);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> base_dist(0, 3);

  SimulatedRead read;
  read.position = pos_dist(rng);
  read.bases = std::string(genome.substr(read.position, spec.read_length));
  read.reverse = coin(rng) < spec.reverse_probability;
  if (read.reverse) read.bases = reverse_complement(read.bases);
  if (spec.error_rate > 0.0) {
    for (auto& c : read.bases) {
      if (coin(rng) < spec.error_rate) {
        // Substitute with a *different* base.
        char replacement = c;
        while (replacement == c) {
          replacement = decode_base(static_cast<Base>(base_dist(rng)));
        }
        c = replacement;
      }
    }
  }
  return read;
}

}  // namespace

std::vector<SimulatedRead> simulate_reads(std::string_view genome,
                                          const SequencingSpec& spec) {
  const std::uint64_t count = read_count_for(genome, spec);
  std::mt19937_64 rng(spec.seed);
  std::vector<SimulatedRead> reads;
  reads.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    reads.push_back(sample_one(genome, spec, rng));
  }
  return reads;
}

std::uint64_t simulate_to_fastq(std::string_view genome,
                                const SequencingSpec& spec,
                                const std::filesystem::path& path) {
  const std::uint64_t count = read_count_for(genome, spec);
  std::mt19937_64 rng(spec.seed);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create " + path.string());
  const std::string quality(spec.read_length, 'I');
  for (std::uint64_t i = 0; i < count; ++i) {
    const SimulatedRead read = sample_one(genome, spec, rng);
    out << "@r" << i << " pos=" << read.position << " strand="
        << (read.reverse ? '-' : '+') << '\n'
        << read.bases << "\n+\n" << quality << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path.string());
  return count;
}

}  // namespace lasagna::seq
