// Packed read storage and batched streaming from FASTQ.
//
// Reads are stored 2-bit-packed. The pipeline's map phase consumes reads in
// bounded batches (disk -> host streaming, first level of the paper's
// two-level model); the compress phase re-streams reads to substitute
// sequences into contig offsets.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "seq/dna.hpp"

namespace lasagna::seq {

/// In-memory packed collection of reads (lengths may vary).
class PackedReads {
 public:
  /// Append a read; returns its id. Non-ACGT characters are sanitized.
  std::uint32_t add(std::string_view bases);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }

  [[nodiscard]] unsigned length(std::uint32_t id) const {
    return static_cast<unsigned>(offsets_[id + 1] - offsets_[id]);
  }

  /// Longest read length in the store (0 when empty).
  [[nodiscard]] unsigned max_length() const { return max_length_; }

  /// Total number of bases.
  [[nodiscard]] std::uint64_t total_bases() const { return offsets_.back(); }

  /// Base `pos` of read `id` (0-based).
  [[nodiscard]] Base base(std::uint32_t id, unsigned pos) const {
    const std::uint64_t bit = (offsets_[id] + pos) * 2;
    return static_cast<Base>((packed_[bit >> 6] >> (bit & 63)) & 3u);
  }

  /// Decode a whole read to a string.
  [[nodiscard]] std::string decode(std::uint32_t id) const;

  /// Decode the reverse complement of a read.
  [[nodiscard]] std::string decode_rc(std::uint32_t id) const;

  /// Approximate resident bytes (packed bases + offsets).
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return packed_.size() * 8 + offsets_.size() * 8;
  }

  /// Load every read from a FASTA/FASTQ file.
  static PackedReads from_file(const std::filesystem::path& path);

  /// Load from several files, ids assigned across them in order.
  static PackedReads from_files(
      const std::vector<std::filesystem::path>& paths);

  /// Build from plain strings (tests).
  static PackedReads from_strings(const std::vector<std::string>& reads);

 private:
  std::vector<std::uint64_t> packed_;        // 32 bases per word
  std::vector<std::uint64_t> offsets_{0};    // base offset per read
  unsigned max_length_ = 0;
};

/// One batch of reads decoded for device processing.
struct ReadBatch {
  std::uint32_t first_id = 0;       ///< id of reads[0]
  std::vector<std::string> reads;   ///< plain ACGT strings
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(reads.size());
  }
};

/// Streams one or more FASTQ/FASTA files as batches with at most
/// `max_batch_bases` bases each (the map phase's disk->host streaming
/// granularity). Multiple files are read back to back with globally
/// consecutive read ids — real sequencing runs ship as several files.
class ReadBatchStream {
 public:
  ReadBatchStream(const std::filesystem::path& path,
                  std::uint64_t max_batch_bases);
  ReadBatchStream(std::vector<std::filesystem::path> paths,
                  std::uint64_t max_batch_bases);
  ~ReadBatchStream();

  ReadBatchStream(const ReadBatchStream&) = delete;
  ReadBatchStream& operator=(const ReadBatchStream&) = delete;

  /// Fill the next batch; returns false when the file is exhausted.
  bool next(ReadBatch& out);

  /// Reads handed out so far.
  [[nodiscard]] std::uint32_t reads_seen() const { return next_id_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t max_batch_bases_;
  std::uint32_t next_id_ = 0;
};

}  // namespace lasagna::seq
