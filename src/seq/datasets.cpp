#include "seq/datasets.hpp"

#include <cmath>
#include <stdexcept>

#include "seq/genome.hpp"
#include "seq/simulator.hpp"

namespace lasagna::seq {

namespace {

// Real genome sizes behind the paper's datasets (approximate, used only to
// derive coverage): human chr14 ~107 Mb, bumblebee ~236 Mb, parakeet ~1.2 Gb,
// human genome ~3.1 Gb.
struct PaperRow {
  const char* name;
  unsigned read_length;
  unsigned min_overlap;
  std::uint64_t reads;
  std::uint64_t bases;
  double genome_mb;
  std::uint64_t seed;
};

constexpr PaperRow kRows[] = {
    {"H.Chr14", 101, 63, 45'711'162ull, 4'559'613'772ull, 107.0, 101},
    {"Bumblebee", 124, 85, 316'172'570ull, 33'562'702'234ull, 236.0, 124},
    {"Parakeet", 150, 111, 608'709'922ull, 91'306'488'300ull, 1200.0, 150},
    {"H.Genome", 100, 63, 1'247'518'392ull, 124'751'839'200ull, 3100.0, 100},
};

DatasetSpec make_spec(const PaperRow& row, double scale) {
  if (scale < 1.0) throw std::invalid_argument("dataset scale must be >= 1");
  DatasetSpec spec;
  spec.name = row.name;
  spec.read_length = row.read_length;
  spec.min_overlap = row.min_overlap;
  spec.paper_reads = row.reads;
  spec.paper_bases = row.bases;
  spec.read_count = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(row.reads) / scale));
  spec.genome_length = static_cast<std::uint64_t>(
      std::llround(row.genome_mb * 1e6 / scale));
  // Keep tiny scaled runs assemble-able.
  spec.genome_length =
      std::max<std::uint64_t>(spec.genome_length, row.read_length * 4);
  spec.read_count = std::max<std::uint64_t>(spec.read_count, 16);
  spec.seed = row.seed;
  return spec;
}

}  // namespace

std::vector<DatasetSpec> paper_datasets(double scale) {
  std::vector<DatasetSpec> out;
  out.reserve(std::size(kRows));
  for (const auto& row : kRows) out.push_back(make_spec(row, scale));
  return out;
}

DatasetSpec paper_dataset(const std::string& name, double scale) {
  for (const auto& row : kRows) {
    if (name == row.name) return make_spec(row, scale);
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

std::string dataset_reference(const DatasetSpec& spec) {
  GenomeSpec genome_spec;
  genome_spec.length = spec.genome_length;
  genome_spec.seed = spec.seed;
  genome_spec.repeat_fraction = spec.repeat_fraction;
  return generate_genome(genome_spec);
}

std::filesystem::path materialize_dataset(const DatasetSpec& spec,
                                          const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  const std::filesystem::path fastq =
      dir / (spec.name + "-" + std::to_string(spec.read_count) + ".fastq");
  if (std::filesystem::exists(fastq)) return fastq;

  const std::string genome = dataset_reference(spec);

  SequencingSpec seq_spec;
  seq_spec.read_length = spec.read_length;
  seq_spec.coverage = static_cast<double>(spec.read_count) *
                      spec.read_length /
                      static_cast<double>(spec.genome_length);
  seq_spec.seed = spec.seed * 7919 + 13;
  simulate_to_fastq(genome, seq_spec, fastq);
  return fastq;
}

}  // namespace lasagna::seq
