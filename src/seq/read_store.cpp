#include "seq/read_store.hpp"

#include <fstream>
#include <stdexcept>

#include "io/fastq.hpp"

namespace lasagna::seq {

std::uint32_t PackedReads::add(std::string_view bases) {
  const std::string clean =
      is_acgt(bases) ? std::string(bases) : sanitize(bases, offsets_.back());
  const std::uint64_t start = offsets_.back();
  const std::uint64_t end = start + clean.size();
  packed_.resize((end * 2 + 63) / 64, 0);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const std::uint64_t bit = (start + i) * 2;
    packed_[bit >> 6] |=
        static_cast<std::uint64_t>(encode_base(clean[i])) << (bit & 63);
  }
  offsets_.push_back(end);
  max_length_ = std::max(max_length_, static_cast<unsigned>(clean.size()));
  return static_cast<std::uint32_t>(offsets_.size() - 2);
}

std::string PackedReads::decode(std::uint32_t id) const {
  const unsigned len = length(id);
  std::string out(len, '\0');
  for (unsigned i = 0; i < len; ++i) out[i] = decode_base(base(id, i));
  return out;
}

std::string PackedReads::decode_rc(std::uint32_t id) const {
  const unsigned len = length(id);
  std::string out(len, '\0');
  for (unsigned i = 0; i < len; ++i) {
    out[len - 1 - i] = decode_base(complement(base(id, i)));
  }
  return out;
}

PackedReads PackedReads::from_file(const std::filesystem::path& path) {
  PackedReads store;
  io::for_each_sequence(path, [&store](const io::SequenceRecord& r) {
    store.add(r.bases);
  });
  return store;
}

PackedReads PackedReads::from_files(
    const std::vector<std::filesystem::path>& paths) {
  PackedReads store;
  for (const auto& path : paths) {
    io::for_each_sequence(path, [&store](const io::SequenceRecord& r) {
      store.add(r.bases);
    });
  }
  return store;
}

PackedReads PackedReads::from_strings(const std::vector<std::string>& reads) {
  PackedReads store;
  for (const auto& r : reads) store.add(r);
  return store;
}

struct ReadBatchStream::Impl {
  std::vector<std::filesystem::path> paths;
  std::size_t file_index = 0;
  std::ifstream file;
  std::unique_ptr<io::SequenceReader> reader;
  io::SequenceRecord pending;
  bool has_pending = false;
  bool done = false;

  explicit Impl(std::vector<std::filesystem::path> in_paths)
      : paths(std::move(in_paths)) {
    if (paths.empty()) {
      throw std::invalid_argument("ReadBatchStream: no input files");
    }
    open_current();
  }

  void open_current() {
    file.close();
    file.clear();
    file.open(paths[file_index]);
    if (!file) {
      throw std::runtime_error("cannot open " +
                               paths[file_index].string());
    }
    reader = std::make_unique<io::SequenceReader>(file);
    reader->set_source(paths[file_index]);
  }

  /// Next record across file boundaries.
  bool next_record(io::SequenceRecord& out) {
    for (;;) {
      if (reader->next(out)) return true;
      if (file_index + 1 >= paths.size()) return false;
      ++file_index;
      open_current();
    }
  }
};

ReadBatchStream::ReadBatchStream(const std::filesystem::path& path,
                                 std::uint64_t max_batch_bases)
    : ReadBatchStream(std::vector<std::filesystem::path>{path},
                      max_batch_bases) {}

ReadBatchStream::ReadBatchStream(std::vector<std::filesystem::path> paths,
                                 std::uint64_t max_batch_bases)
    : impl_(std::make_unique<Impl>(std::move(paths))),
      max_batch_bases_(max_batch_bases) {
  if (max_batch_bases_ == 0) {
    throw std::invalid_argument("ReadBatchStream: zero batch size");
  }
}

ReadBatchStream::~ReadBatchStream() = default;

bool ReadBatchStream::next(ReadBatch& out) {
  out.first_id = next_id_;
  out.reads.clear();
  if (impl_->done) return false;

  std::uint64_t bases = 0;
  for (;;) {
    if (!impl_->has_pending) {
      if (!impl_->next_record(impl_->pending)) {
        impl_->done = true;
        break;
      }
      impl_->has_pending = true;
    }
    const std::uint64_t len = impl_->pending.bases.size();
    if (!out.reads.empty() && bases + len > max_batch_bases_) break;
    std::string clean = is_acgt(impl_->pending.bases)
                            ? std::move(impl_->pending.bases)
                            : sanitize(impl_->pending.bases, next_id_);
    out.reads.push_back(std::move(clean));
    impl_->has_pending = false;
    bases += len;
    ++next_id_;
  }
  return !out.reads.empty();
}

}  // namespace lasagna::seq
