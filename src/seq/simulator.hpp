// Shotgun sequencing simulator (paper Fig 1).
//
// Samples fixed-length reads uniformly from a genome, flips each to the
// reverse strand with probability 0.5 (Illumina reads come from either
// strand), and optionally injects substitution errors at a per-base rate.
// Ground-truth positions can be retained for tests.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace lasagna::seq {

struct SequencingSpec {
  unsigned read_length = 100;
  double coverage = 40.0;          ///< average depth; read count derived
  double error_rate = 0.0;         ///< per-base substitution probability
  double reverse_probability = 0.5;
  std::uint64_t seed = 7;
};

/// One simulated read plus its ground truth.
struct SimulatedRead {
  std::string bases;
  std::uint64_t position = 0;  ///< 0-based start on the forward strand
  bool reverse = false;        ///< true if sampled from the reverse strand
};

/// Sample reads covering `genome` per `spec`. Deterministic in the seed.
[[nodiscard]] std::vector<SimulatedRead> simulate_reads(
    std::string_view genome, const SequencingSpec& spec);

/// Simulate and write straight to a FASTQ file, returning the read count.
/// Headers encode the ground truth as "r<idx> pos=<p> strand=<+/->".
std::uint64_t simulate_to_fastq(std::string_view genome,
                                const SequencingSpec& spec,
                                const std::filesystem::path& path);

}  // namespace lasagna::seq
