#include "seq/genome.hpp"

#include <random>

#include "seq/dna.hpp"

namespace lasagna::seq {

std::string random_genome(std::uint64_t length, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> base(0, 3);
  std::string g(length, '\0');
  for (auto& c : g) c = decode_base(static_cast<Base>(base(rng)));
  return g;
}

std::string generate_genome(const GenomeSpec& spec) {
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<int> base(0, 3);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::string g;
  g.reserve(spec.length);
  const unsigned seg = std::max(1u, spec.repeat_segment);
  while (g.size() < spec.length) {
    const std::uint64_t want =
        std::min<std::uint64_t>(seg, spec.length - g.size());
    if (spec.repeat_fraction > 0.0 && g.size() > seg &&
        coin(rng) < spec.repeat_fraction) {
      // Copy an earlier segment; half the time reverse-complemented
      // (inverted repeat).
      std::uniform_int_distribution<std::uint64_t> pos(0, g.size() - want);
      std::string copy = g.substr(pos(rng), want);
      if (coin(rng) < 0.5) copy = reverse_complement(copy);
      g += copy;
    } else {
      for (std::uint64_t i = 0; i < want; ++i) {
        g += decode_base(static_cast<Base>(base(rng)));
      }
    }
  }
  return g;
}

}  // namespace lasagna::seq
