#include "seq/evaluate.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "io/fastq.hpp"
#include "seq/dna.hpp"

namespace lasagna::seq {

namespace {

// Local N50 (core::compute_n50 lives above this library in the dependency
// order).
std::uint64_t n50_of(std::vector<std::uint64_t> lengths) {
  if (lengths.empty()) return 0;
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  const std::uint64_t total =
      std::accumulate(lengths.begin(), lengths.end(), std::uint64_t{0});
  std::uint64_t running = 0;
  for (const std::uint64_t len : lengths) {
    running += len;
    if (running * 2 >= total) return len;
  }
  return lengths.back();
}

/// NG50: like N50 but against the reference length — 0 when the assembly
/// never reaches half the reference.
std::uint64_t ng50_of(std::vector<std::uint64_t> lengths,
                      std::uint64_t reference_length) {
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  std::uint64_t running = 0;
  for (const std::uint64_t len : lengths) {
    running += len;
    if (running * 2 >= reference_length) return len;
  }
  return 0;
}

/// Can `contig` be placed on `ref` (one strand) with only isolated base
/// errors? Seed with short windows from the front, middle and back; for
/// each exact seed occurrence, overlay the whole contig at the implied
/// position and count substitutions (the simulator introduces no indels).
bool anchors_with_few_mismatches(const std::string& ref,
                                 const std::string& contig) {
  const std::size_t len = contig.size();
  const std::size_t window =
      std::min<std::size_t>(64, std::max<std::size_t>(16, len / 4));
  if (len < window) return false;
  const std::uint64_t budget = std::max<std::uint64_t>(3, len / 200);

  for (const std::size_t w :
       {std::size_t{0}, len / 2 - std::min(len / 2, window / 2),
        len - window}) {
    const std::size_t pos =
        ref.find(std::string_view(contig).substr(w, window));
    if (pos == std::string::npos || pos < w || pos - w + len > ref.size()) {
      continue;
    }
    const std::size_t start = pos - w;
    std::uint64_t mismatches = 0;
    for (std::size_t i = 0; i < len && mismatches <= budget; ++i) {
      mismatches += contig[i] != ref[start + i];
    }
    if (mismatches <= budget) return true;
  }
  return false;
}

/// Canonical (strand-independent) hash of a window.
std::size_t window_hash(std::string_view w) {
  const std::string rc = reverse_complement(w);
  const std::string_view canon =
      std::string_view(rc) < w ? std::string_view(rc) : w;
  return std::hash<std::string_view>{}(canon);
}

}  // namespace

AssemblyEvaluation evaluate_assembly(std::string_view reference,
                                     const std::vector<std::string>& contigs,
                                     const EvaluationConfig& config) {
  AssemblyEvaluation eval;
  eval.reference_length = reference.size();

  // Index every contig window (stride 1 on contigs so any sampled reference
  // window can hit, at the cost of contig-side memory).
  std::unordered_set<std::size_t> contig_windows;
  std::vector<std::uint64_t> lengths;
  const std::string ref_fwd(reference);
  const std::string ref_rc = reverse_complement(reference);
  for (const auto& c : contigs) {
    if (c.size() < config.min_contig) continue;
    ++eval.contigs;
    eval.total_bases += c.size();
    eval.largest = std::max<std::uint64_t>(eval.largest, c.size());
    lengths.push_back(c.size());
    for (std::size_t pos = 0; pos + config.window <= c.size(); ++pos) {
      contig_windows.insert(
          window_hash(std::string_view(c).substr(pos, config.window)));
    }

    // Correctness classification: exact substring; else try to anchor the
    // contig on the reference with a short error-free window and count
    // substitutions over the full span — few substitutions means isolated
    // base errors ("mismatch contig"), anything else (no consistent
    // anchor, or a mismatch burst such as a chimeric junction) is a
    // misassembly candidate.
    if (ref_fwd.find(c) != std::string::npos ||
        ref_rc.find(c) != std::string::npos) {
      ++eval.exact_contigs;
    } else if (anchors_with_few_mismatches(ref_fwd, c) ||
               anchors_with_few_mismatches(ref_rc, c)) {
      ++eval.mismatch_contigs;
    } else {
      ++eval.misassembled;
    }
  }
  eval.ng50 = ng50_of(lengths, eval.reference_length);
  eval.n50 = n50_of(std::move(lengths));

  // Genome fraction: sampled reference windows present in some contig.
  std::uint64_t sampled = 0;
  std::uint64_t covered = 0;
  for (std::size_t pos = 0; pos + config.window <= reference.size();
       pos += config.stride) {
    ++sampled;
    covered += contig_windows.count(
        window_hash(reference.substr(pos, config.window)));
  }
  eval.genome_fraction =
      sampled == 0 ? 0.0 : static_cast<double>(covered) / sampled;
  const double covered_bases =
      eval.genome_fraction * static_cast<double>(reference.size());
  eval.duplication_ratio =
      covered_bases <= 0.0
          ? 0.0
          : static_cast<double>(eval.total_bases) / covered_bases;
  return eval;
}

AssemblyEvaluation evaluate_assembly_file(std::string_view reference,
                                          const std::string& contig_fasta_path,
                                          const EvaluationConfig& config) {
  std::vector<std::string> contigs;
  io::for_each_sequence(contig_fasta_path,
                        [&contigs](const io::SequenceRecord& rec) {
                          contigs.push_back(rec.bases);
                        });
  return evaluate_assembly(reference, contigs, config);
}

}  // namespace lasagna::seq
