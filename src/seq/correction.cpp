#include "seq/correction.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "io/fastq.hpp"
#include "seq/dna.hpp"

namespace lasagna::seq {

namespace {

/// Pack the k bases at `pos` into 2-bit codes, high bits first.
std::uint64_t pack_forward(const std::string& bases, std::size_t pos,
                           unsigned k) {
  std::uint64_t code = 0;
  for (unsigned i = 0; i < k; ++i) {
    code = (code << 2) |
           static_cast<std::uint64_t>(encode_base(bases[pos + i]));
  }
  return code;
}

/// Reverse complement of a packed k-mer.
std::uint64_t rc_code(std::uint64_t code, unsigned k) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < k; ++i) {
    out = (out << 2) | ((code ^ 3u) & 3u);
    code >>= 2;
  }
  return out;
}

}  // namespace

KmerSpectrum::KmerSpectrum(unsigned k) : k_(k) {
  if (k == 0 || k > 32) {
    throw std::invalid_argument("KmerSpectrum: k must be in [1, 32]");
  }
  mask_ = k == 32 ? ~std::uint64_t{0} : (std::uint64_t{1} << (2 * k)) - 1;
}

std::uint64_t KmerSpectrum::canonical_at(const std::string& bases,
                                         std::size_t pos) const {
  const std::uint64_t fwd = pack_forward(bases, pos, k_);
  return std::min(fwd, rc_code(fwd, k_));
}

void KmerSpectrum::add_read(const std::string& bases) {
  if (bases.size() < k_) return;
  // Rolling forward/reverse codes to avoid re-packing per position.
  std::uint64_t fwd = pack_forward(bases, 0, k_);
  std::uint64_t rev = rc_code(fwd, k_);
  ++counts_[std::min(fwd, rev)];
  for (std::size_t pos = 1; pos + k_ <= bases.size(); ++pos) {
    const auto code =
        static_cast<std::uint64_t>(encode_base(bases[pos + k_ - 1]));
    fwd = ((fwd << 2) | code) & mask_;
    rev = (rev >> 2) | ((code ^ 3u) << (2 * (k_ - 1)));
    ++counts_[std::min(fwd, rev)];
  }
}

std::uint32_t KmerSpectrum::count(std::uint64_t canonical_kmer) const {
  const auto it = counts_.find(canonical_kmer);
  return it == counts_.end() ? 0u : it->second;
}

namespace {

bool window_strong(const std::string& bases, std::size_t pos,
                   const KmerSpectrum& spectrum,
                   const CorrectionConfig& config) {
  return spectrum.is_strong(spectrum.canonical_at(bases, pos),
                            config.min_count);
}

/// Any weak k-mer in the read?
bool has_weak(const std::string& bases, const KmerSpectrum& spectrum,
              const CorrectionConfig& config) {
  if (bases.size() < config.k) return false;
  for (std::size_t pos = 0; pos + config.k <= bases.size(); ++pos) {
    if (!window_strong(bases, pos, spectrum, config)) return true;
  }
  return false;
}

/// How many consecutive k-mers starting at `pos` are strong (capped).
unsigned strong_run(const std::string& bases, std::size_t pos,
                    const KmerSpectrum& spectrum,
                    const CorrectionConfig& config, unsigned cap) {
  unsigned run = 0;
  while (run < cap && pos + config.k <= bases.size() &&
         window_strong(bases, pos, spectrum, config)) {
    ++run;
    ++pos;
  }
  return run;
}

}  // namespace

unsigned correct_read(std::string& bases, const KmerSpectrum& spectrum,
                      const CorrectionConfig& config, bool& fully_corrected) {
  const unsigned k = config.k;
  fully_corrected = true;
  if (bases.size() < k) return 0;

  unsigned changed = 0;
  // Left-to-right greedy spectral walk: when the k-mer at `pos` is weak,
  // the error is most plausibly at its last base (everything before was
  // validated by earlier strong windows); pick the substitution whose
  // following windows stay strong the longest.
  for (std::size_t pos = 0; pos + k <= bases.size(); ++pos) {
    if (window_strong(bases, pos, spectrum, config)) continue;

    const std::size_t fix_at = pos + k - 1;
    const char original = bases[fix_at];
    char best = original;
    // Baseline: keeping the base as-is scores its current strong run.
    unsigned best_run =
        strong_run(bases, pos, spectrum, config, /*cap=*/k + 1);
    for (const char candidate : {'A', 'C', 'G', 'T'}) {
      if (candidate == original) continue;
      bases[fix_at] = candidate;
      const unsigned run =
          strong_run(bases, pos, spectrum, config, /*cap=*/k + 1);
      if (run > best_run) {
        best_run = run;
        best = candidate;
      }
    }
    bases[fix_at] = best;
    if (best != original) {
      ++changed;
      if (changed > config.max_corrections_per_read) {
        // Too many edits: revert is pointless (earlier edits were each
        // individually validated); just stop editing.
        break;
      }
    }
  }
  fully_corrected = !has_weak(bases, spectrum, config);
  return changed;
}

CorrectionStats correct_reads_file(const std::filesystem::path& input_fastq,
                                   const std::filesystem::path& output_fastq,
                                   const CorrectionConfig& config) {
  CorrectionStats stats;

  // Pass 1: spectrum.
  KmerSpectrum spectrum(config.k);
  io::for_each_sequence(input_fastq, [&](const io::SequenceRecord& rec) {
    const std::string clean = is_acgt(rec.bases)
                                  ? rec.bases
                                  : sanitize(rec.bases, stats.reads);
    spectrum.add_read(clean);
    ++stats.reads;
  });
  stats.distinct_kmers = spectrum.distinct();
  stats.reads = 0;

  // Pass 2: correct and rewrite.
  std::ofstream out(output_fastq);
  if (!out) {
    throw std::runtime_error("cannot create " + output_fastq.string());
  }
  io::for_each_sequence(input_fastq, [&](const io::SequenceRecord& rec) {
    std::string bases = is_acgt(rec.bases)
                            ? rec.bases
                            : sanitize(rec.bases, stats.reads);
    ++stats.reads;
    if (has_weak(bases, spectrum, config)) {
      ++stats.reads_with_weak_kmers;
      bool fully = false;
      const unsigned changed =
          correct_read(bases, spectrum, config, fully);
      stats.bases_corrected += changed;
      if (fully) {
        ++stats.reads_corrected;
      } else {
        ++stats.reads_uncorrectable;
      }
    }
    out << '@' << rec.id << '\n' << bases << "\n+\n"
        << (rec.quality.size() == bases.size()
                ? rec.quality
                : std::string(bases.size(), 'I'))
        << '\n';
  });
  if (!out) {
    throw std::runtime_error("write failed: " + output_fastq.string());
  }
  return stats;
}

}  // namespace lasagna::seq
