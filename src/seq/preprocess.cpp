#include "seq/preprocess.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "io/fastq.hpp"
#include "seq/dna.hpp"

namespace lasagna::seq {

unsigned quality_trim(std::string& bases, std::string& quality,
                      char quality_floor) {
  if (quality.size() != bases.size()) return 0;  // no quality -> no trim
  std::size_t begin = 0;
  std::size_t end = bases.size();
  while (begin < end && quality[begin] < quality_floor) ++begin;
  while (end > begin && quality[end - 1] < quality_floor) --end;
  const unsigned removed =
      static_cast<unsigned>(bases.size() - (end - begin));
  if (removed > 0) {
    bases = bases.substr(begin, end - begin);
    quality = quality.substr(begin, end - begin);
  }
  return removed;
}

PreprocessStats preprocess_reads_file(const std::filesystem::path& input,
                                      const std::filesystem::path& output,
                                      const PreprocessConfig& config) {
  PreprocessStats stats;
  std::ofstream out(output);
  if (!out) throw std::runtime_error("cannot create " + output.string());

  io::for_each_sequence(input, [&](const io::SequenceRecord& rec) {
    ++stats.reads_in;
    stats.bases_in += rec.bases.size();

    std::string bases = rec.bases;
    std::string quality = rec.quality;
    const unsigned removed = quality_trim(bases, quality,
                                          config.quality_floor);
    if (removed > 0) ++stats.reads_trimmed;

    if (bases.size() < config.min_length) {
      ++stats.reads_dropped_short;
      return;
    }

    std::size_t ambiguous = 0;
    for (const char c : bases) {
      Base b;
      ambiguous += !try_encode_base(c, b);
    }
    if (static_cast<double>(ambiguous) >
        config.max_ambiguous_fraction * static_cast<double>(bases.size())) {
      ++stats.reads_dropped_ambiguous;
      return;
    }
    if (ambiguous > 0) bases = sanitize(bases, stats.reads_in);

    ++stats.reads_out;
    stats.bases_out += bases.size();
    out << '@' << rec.id << '\n' << bases << "\n+\n"
        << (quality.size() == bases.size()
                ? quality
                : std::string(bases.size(), 'I'))
        << '\n';
  });
  if (!out) throw std::runtime_error("write failed: " + output.string());
  return stats;
}

}  // namespace lasagna::seq
