// Read preprocessing (the baseline pipeline's "preprocess" stage, modeled
// on SGA's): quality-trim read ends, filter reads that end up too short or
// carry too many ambiguous bases, and emit clean FASTQ for the assembler.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

namespace lasagna::seq {

struct PreprocessConfig {
  /// Bases with Phred+33 quality below this are trimmed from both ends
  /// ('5' = Q20). Reads without quality strings are left untrimmed.
  char quality_floor = '5';
  /// Reads shorter than this after trimming are dropped.
  unsigned min_length = 40;
  /// Reads whose fraction of non-ACGT bases exceeds this are dropped;
  /// surviving ambiguous bases are replaced deterministically.
  double max_ambiguous_fraction = 0.1;
};

struct PreprocessStats {
  std::uint64_t reads_in = 0;
  std::uint64_t reads_out = 0;
  std::uint64_t bases_in = 0;
  std::uint64_t bases_out = 0;
  std::uint64_t reads_trimmed = 0;    ///< at least one base removed
  std::uint64_t reads_dropped_short = 0;
  std::uint64_t reads_dropped_ambiguous = 0;
};

/// Trim one read in place (bases + quality); returns bases removed.
unsigned quality_trim(std::string& bases, std::string& quality,
                      char quality_floor);

/// Preprocess a whole FASTQ/FASTA file into `output`.
PreprocessStats preprocess_reads_file(const std::filesystem::path& input,
                                      const std::filesystem::path& output,
                                      const PreprocessConfig& config);

}  // namespace lasagna::seq
