// Reference-based assembly evaluation (QUAST-style, simplified).
//
// Given the reference a dataset was simulated from and the contigs an
// assembler produced, report completeness (genome fraction via k-mer
// windows), correctness (exact-substring contigs, mismatch contigs,
// junction-misassembly candidates), contiguity (N50 over the evaluated
// set) and duplication. Used by the examples and by tests that assert the
// pipeline's output quality end to end.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lasagna::seq {

struct EvaluationConfig {
  unsigned window = 100;  ///< reference window size for genome fraction
  unsigned stride = 20;   ///< window sampling stride
  /// Contigs shorter than this are ignored (QUAST's min-contig analog).
  std::uint64_t min_contig = 0;
};

struct AssemblyEvaluation {
  std::uint64_t reference_length = 0;
  std::uint64_t contigs = 0;         ///< evaluated (>= min_contig)
  std::uint64_t total_bases = 0;
  std::uint64_t n50 = 0;
  /// N50 computed against the reference length instead of the assembly
  /// size (QUAST's NG50): 0 when the contigs cover less than half the
  /// reference.
  std::uint64_t ng50 = 0;
  std::uint64_t largest = 0;
  /// Fraction of sampled reference windows found in some contig (either
  /// orientation).
  double genome_fraction = 0.0;
  /// total_bases / covered reference bases (>1 = redundant assembly).
  double duplication_ratio = 0.0;
  std::uint64_t exact_contigs = 0;    ///< exact substring of the reference
  std::uint64_t mismatch_contigs = 0; ///< not exact, both halves exact
                                      ///< (isolated base errors)
  std::uint64_t misassembled = 0;     ///< neither (structural suspicion)
};

/// Evaluate contigs against a reference.
[[nodiscard]] AssemblyEvaluation evaluate_assembly(
    std::string_view reference, const std::vector<std::string>& contigs,
    const EvaluationConfig& config = {});

/// Convenience overload reading contigs from a FASTA file.
[[nodiscard]] AssemblyEvaluation evaluate_assembly_file(
    std::string_view reference, const std::string& contig_fasta_path,
    const EvaluationConfig& config = {});

}  // namespace lasagna::seq
