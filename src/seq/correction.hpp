// K-mer-spectrum read error correction.
//
// Real assembler pipelines (SGA included) correct sequencing errors before
// overlap computation; the paper excludes SGA's correction stage from its
// comparison but real deployments of LaSAGNA would run one. This module
// implements the classic spectral approach: count canonical k-mers across
// the dataset, call k-mers below a coverage threshold "weak" (an error
// creates k consecutive weak k-mers), and for each read greedily substitute
// bases so that every window becomes strong.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_map>

namespace lasagna::seq {

struct CorrectionConfig {
  unsigned k = 21;          ///< k-mer size (must be <= 32)
  unsigned min_count = 3;   ///< k-mers seen fewer times are weak
  unsigned max_corrections_per_read = 4;  ///< give up beyond this
};

struct CorrectionStats {
  std::uint64_t reads = 0;
  std::uint64_t reads_with_weak_kmers = 0;
  std::uint64_t reads_corrected = 0;   ///< fully repaired (no weak k-mers left)
  std::uint64_t bases_corrected = 0;
  std::uint64_t reads_uncorrectable = 0;
  std::uint64_t distinct_kmers = 0;
};

/// The k-mer coverage spectrum of a read set (canonical k-mers packed into
/// 64 bits, so k <= 32).
class KmerSpectrum {
 public:
  explicit KmerSpectrum(unsigned k);

  /// Count every k-mer of `bases` (both strands via canonicalization).
  void add_read(const std::string& bases);

  [[nodiscard]] std::uint32_t count(std::uint64_t canonical_kmer) const;

  /// True if the canonical k-mer at `code` has count >= min_count.
  [[nodiscard]] bool is_strong(std::uint64_t canonical_kmer,
                               unsigned min_count) const {
    return count(canonical_kmer) >= min_count;
  }

  [[nodiscard]] unsigned k() const { return k_; }
  [[nodiscard]] std::uint64_t distinct() const { return counts_.size(); }

  /// Canonical code of the k-mer starting at `pos` in `bases`
  /// (min of forward and reverse-complement packings).
  [[nodiscard]] std::uint64_t canonical_at(const std::string& bases,
                                           std::size_t pos) const;

 private:
  unsigned k_;
  std::uint64_t mask_;
  std::unordered_map<std::uint64_t, std::uint32_t> counts_;
};

/// Correct a single read in place against a spectrum.
/// Returns the number of bases changed; sets `fully_corrected` to true when
/// no weak k-mers remain afterwards.
unsigned correct_read(std::string& bases, const KmerSpectrum& spectrum,
                      const CorrectionConfig& config, bool& fully_corrected);

/// Two-pass file correction: build the spectrum, then rewrite each read.
/// Reads that remain weak after correction are kept (not discarded) so the
/// caller can still assemble them.
CorrectionStats correct_reads_file(const std::filesystem::path& input_fastq,
                                   const std::filesystem::path& output_fastq,
                                   const CorrectionConfig& config);

}  // namespace lasagna::seq
