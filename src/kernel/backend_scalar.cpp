// Scalar host backend: straightforward single-threaded C++ for all three
// kernels. This is the portable fallback (runs on any CPU) and the wall-
// clock baseline the AVX2 backend's speedup gate is measured against. Its
// modular arithmetic goes through util::mulmod's 128-bit division — the
// very cost the AVX2 path's Shoup multiplication removes.
#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>

#include "gpu/key128.hpp"
#include "kernel/backend.hpp"
#include "util/modmath.hpp"

namespace lasagna::kernel {

namespace {

using gpu::Key128;
using util::addmod;
using util::mulmod;

void scalar_fingerprint(const FingerprintJob& job) {
  const std::uint64_t qa = job.primary.modulus;
  const std::uint64_t qb = job.secondary.modulus;
  const std::uint64_t ra = job.primary.radix;
  const std::uint64_t rb = job.secondary.radix;
  for (unsigned r = 0; r < job.count; ++r) {
    const unsigned len = job.lengths[r];
    const std::uint8_t* codes =
        job.codes.data() + static_cast<std::size_t>(r) * job.stride;
    Key128* prefix_row = job.prefix + static_cast<std::size_t>(r) * job.stride;
    Key128* suffix_row = job.suffix + static_cast<std::size_t>(r) * job.stride;

    std::uint64_t ha = 0;
    std::uint64_t hb = 0;
    for (unsigned i = 0; i < len; ++i) {
      ha = addmod(mulmod(ha, ra, qa), codes[i] % qa, qa);
      hb = addmod(mulmod(hb, rb, qb), codes[i] % qb, qb);
      prefix_row[i] = Key128{ha, hb};
    }
    std::uint64_t sa = 0;
    std::uint64_t sb = 0;
    for (unsigned i = len; i-- > 0;) {
      sa = addmod(mulmod(codes[i] % qa, job.pow_primary[len - 1 - i], qa), sa,
                  qa);
      sb = addmod(mulmod(codes[i] % qb, job.pow_secondary[len - 1 - i], qb),
                  sb, qb);
      suffix_row[i] = Key128{sa, sb};
    }
  }
}

void scalar_match_bounds(std::span<const Key128> needles,
                         std::span<const Key128> haystack,
                         std::span<std::uint32_t> lower,
                         std::span<std::uint32_t> upper) {
  for (std::size_t i = 0; i < needles.size(); ++i) {
    lower[i] = static_cast<std::uint32_t>(
        std::lower_bound(haystack.begin(), haystack.end(), needles[i]) -
        haystack.begin());
    upper[i] = static_cast<std::uint32_t>(
        std::upper_bound(haystack.begin(), haystack.end(), needles[i]) -
        haystack.begin());
  }
}

void scalar_sort_pairs(std::span<Key128> keys,
                       std::span<std::uint64_t> values) {
  const std::size_t n = keys.size();
  if (n < 2) return;

  std::vector<Key128> tmp_k(n);
  std::vector<std::uint64_t> tmp_v(n);

  // One pre-pass builds all 16 digit histograms, so degenerate passes
  // (every key shares the digit) skip without touching data — the same
  // optimization the simulated device path applies, and a requirement for
  // byte-identity is NOT affected either way: any stable LSD digit order
  // yields the same output permutation.
  std::array<std::array<std::uint64_t, 256>, Key128::kDigits> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned d = 0; d < Key128::kDigits; ++d) {
      ++hist[d][keys[i].digit(d)];
    }
  }

  Key128* src_k = keys.data();
  std::uint64_t* src_v = values.data();
  Key128* dst_k = tmp_k.data();
  std::uint64_t* dst_v = tmp_v.data();

  for (unsigned d = 0; d < Key128::kDigits; ++d) {
    const auto& h = hist[d];
    bool degenerate = false;
    for (unsigned b = 0; b < 256; ++b) {
      if (h[b] == n) {
        degenerate = true;
        break;
      }
    }
    if (degenerate) continue;

    std::array<std::uint64_t, 256> offsets;
    std::uint64_t running = 0;
    for (unsigned b = 0; b < 256; ++b) {
      offsets[b] = running;
      running += h[b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t at = offsets[src_k[i].digit(d)]++;
      dst_k[at] = src_k[i];
      dst_v[at] = src_v[i];
    }
    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
  }

  if (src_k != keys.data()) {
    std::copy(src_k, src_k + n, keys.data());
    std::copy(src_v, src_v + n, values.data());
  }
}

class ScalarBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const override { return "scalar"; }
  [[nodiscard]] bool available() const override { return true; }

  void fingerprint(const FingerprintJob& job, DeviceContext*) override {
    scalar_fingerprint(job);
  }

  void match_bounds(std::span<const Key128> needles,
                    std::span<const Key128> haystack,
                    std::span<std::uint32_t> lower,
                    std::span<std::uint32_t> upper, DeviceContext*) override {
    if (lower.size() != needles.size() || upper.size() != needles.size()) {
      throw std::invalid_argument("match_bounds: output size mismatch");
    }
    scalar_match_bounds(needles, haystack, lower, upper);
  }

  void sort_pairs(std::span<Key128> keys, std::span<std::uint64_t> values,
                  DeviceContext*) override {
    if (keys.size() != values.size()) {
      throw std::invalid_argument("sort_pairs: key/value size mismatch");
    }
    scalar_sort_pairs(keys, values);
  }
};

}  // namespace

Backend& scalar_backend() {
  static ScalarBackend backend;
  return backend;
}

}  // namespace lasagna::kernel
