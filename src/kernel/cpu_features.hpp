// Runtime CPU-feature detection for the host kernel backends.
//
// The AVX2 backend is compiled with -mavx2 in its own translation unit; it
// must never execute unless the *running* CPU advertises AVX2, or builds
// shipped to older hosts crash on the first vector instruction. cpuid is
// queried once and cached.
#pragma once

namespace lasagna::kernel {

struct CpuFeatures {
  bool avx2 = false;
  bool bmi2 = false;
};

/// Features of the CPU this process is running on (cached after first call).
[[nodiscard]] const CpuFeatures& cpu_features();

}  // namespace lasagna::kernel
