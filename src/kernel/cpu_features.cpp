#include "kernel/cpu_features.hpp"

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <cpuid.h>
#define LASAGNA_HAVE_CPUID 1
#endif

namespace lasagna::kernel {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#ifdef LASAGNA_HAVE_CPUID
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return f;
  // Leaf 7 subleaf 0: EBX bit 5 = AVX2, EBX bit 8 = BMI2.
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  f.avx2 = (ebx & (1u << 5)) != 0;
  f.bmi2 = (ebx & (1u << 8)) != 0;
  // AVX2 also needs OS support for saving YMM state (XSAVE/OSXSAVE +
  // XCR0 bits 1 and 2); without it the vector registers are not preserved
  // across context switches.
  if (f.avx2) {
    __cpuid(1, eax, ebx, ecx, edx);
    const bool osxsave = (ecx & (1u << 27)) != 0;
    if (!osxsave) {
      f.avx2 = false;
    } else {
      std::uint32_t xcr0_lo = 0;
      std::uint32_t xcr0_hi = 0;
      __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
      if ((xcr0_lo & 0x6) != 0x6) f.avx2 = false;
    }
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect();
  return features;
}

}  // namespace lasagna::kernel
