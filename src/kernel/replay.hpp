// Replay half of the golden testbed: re-execute any kernel backend
// against a captured dump and byte-compare its outputs against the golden
// capture, timing the kernel calls on the *wall clock*. This is how
// alternative backends (AVX2 today; CUDA/HLS per the ROADMAP) are both
// verified and benchmarked on real pipeline workloads, without running
// the pipeline.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "kernel/backend.hpp"

namespace lasagna::kernel {

/// Replay result for one kernel's dump file against one backend.
struct KernelReplayStats {
  KernelId kernel{};
  std::uint64_t records = 0;     ///< records in the dump
  std::uint64_t replayed = 0;    ///< records re-executed (records * repeat)
  std::uint64_t mismatched = 0;  ///< records whose output differed
  std::uint64_t elements = 0;    ///< kernel-specific work items, per pass
  std::uint64_t bytes = 0;       ///< input+output bytes, per pass
  double wall_seconds = 0;       ///< wall time inside backend calls only
  double modeled_seconds = 0;    ///< modeled device time (simulated only)

  [[nodiscard]] double elements_per_second() const {
    return wall_seconds > 0
               ? static_cast<double>(elements) *
                     (replayed == 0 || records == 0
                          ? 1.0
                          : static_cast<double>(replayed) / records) /
                     wall_seconds
               : 0;
  }
  [[nodiscard]] double gigabytes_per_second() const {
    return wall_seconds > 0
               ? static_cast<double>(bytes) *
                     (replayed == 0 || records == 0
                          ? 1.0
                          : static_cast<double>(replayed) / records) /
                     wall_seconds / 1e9
               : 0;
  }
};

struct ReplayReport {
  std::vector<KernelReplayStats> kernels;
  /// True when every replayed record byte-matched its golden output.
  [[nodiscard]] bool ok() const {
    for (const auto& k : kernels) {
      if (k.mismatched != 0) return false;
    }
    return !kernels.empty();
  }
};

/// Replay every dump file present in `dir` through `backend`, `repeat`
/// times each (wall times accumulate over all passes; mismatches are
/// counted once per record). Throws std::runtime_error on malformed dumps
/// or if the directory holds no dump files.
[[nodiscard]] ReplayReport replay_dump(const std::filesystem::path& dir,
                                       Backend& backend,
                                       std::size_t repeat = 1);

}  // namespace lasagna::kernel
