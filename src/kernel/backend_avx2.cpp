// AVX2 host backend: the first *wall-clock* implementation of the three
// hot kernels (every earlier number in this repo is modeled time).
//
// Why it is fast relative to the scalar backend:
//
//   * fingerprint — the scalar path reduces every Rabin-Karp step with
//     util::mulmod's `unsigned __int128 %`, a library 128/64 division
//     (__umodti3). Here the per-step multiplier is invariant (the radix
//     sigma), so each lane uses Shoup modular multiplication instead:
//     precompute w' = floor(w * 2^64 / q) once, then
//         qest = mulhi64(a, w');  r = a*w - qest*q   (in [0, 2q))
//     — two 64x64 multiplies and one conditional subtract, no division.
//     Four reads run per vector lane (64-bit lanes); reads are processed
//     in strips of four, prefixes front-aligned and suffixes end-aligned
//     so the place value sigma^k is a per-step broadcast constant.
//     Requires q < 2^62 (the suffix accumulator reaches 4q); jobs with
//     out-of-range moduli delegate to the scalar backend.
//   * match_bounds — branchless binary search: all lanes execute the same
//     halving schedule (len is shared), the probed key is fetched with
//     vpgatherqq, and the comparison result conditionally advances each
//     lane's base. Four needles per iteration, no branch mispredicts.
//   * sort_pairs — same stable LSD radix as the scalar backend (identical
//     output permutation), but the 16-digit counting pre-pass spreads
//     increments over four histogram banks (breaking store-forward
//     dependency chains) and merges the banks with 256-bit vector adds;
//     record moves use 128-bit loads/stores.
//
// AVX2 has no 64-bit full multiply or unsigned compare, so both are
// synthesized: mulhi/mullo from vpmuludq 32-bit limb products, unsigned
// compare by XORing the sign bit before the signed vpcmpgtq.
//
// The whole implementation is compiled only when the build enables
// LASAGNA_AVX2 (then this TU gets -mavx2); at runtime available() also
// requires cpuid to report AVX2 + OS ymm-state support, so generic builds
// and older hosts fall back to scalar instead of crashing (satellite:
// kernel::cpu_features()).
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "gpu/key128.hpp"
#include "kernel/backend.hpp"
#include "kernel/cpu_features.hpp"
#include "util/modmath.hpp"

#if defined(LASAGNA_AVX2_COMPILED) && defined(__AVX2__)
#include <immintrin.h>
#define LASAGNA_AVX2_IMPL 1
#endif

namespace lasagna::kernel {

namespace {

using gpu::Key128;

#ifdef LASAGNA_AVX2_IMPL

// ---- 64-bit vector arithmetic building blocks ------------------------------

const __m256i kSignBit = _mm256_set1_epi64x(
    static_cast<long long>(0x8000000000000000ull));

/// Low 64 bits of the 64x64 product, per lane.
inline __m256i mul64_lo(__m256i a, __m256i b) {
  const __m256i ah = _mm256_srli_epi64(a, 32);
  const __m256i bh = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, bh);
  const __m256i hl = _mm256_mul_epu32(ah, b);
  // Only the low 32 bits of (lh + hl) survive the shift, so the sum may
  // wrap freely.
  const __m256i mid = _mm256_add_epi64(lh, hl);
  return _mm256_add_epi64(ll, _mm256_slli_epi64(mid, 32));
}

/// High 64 bits of the 64x64 product, per lane (exact).
inline __m256i mul64_hi(__m256i a, __m256i b) {
  const __m256i m32 = _mm256_set1_epi64x(0xffffffffll);
  const __m256i ah = _mm256_srli_epi64(a, 32);
  const __m256i bh = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, bh);
  const __m256i hl = _mm256_mul_epu32(ah, b);
  const __m256i hh = _mm256_mul_epu32(ah, bh);
  // Carry out of bits [32, 64) of the full product: three 32-bit terms,
  // sum < 3 * 2^32, no overflow.
  __m256i mid = _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                                 _mm256_and_si256(lh, m32));
  mid = _mm256_add_epi64(mid, _mm256_and_si256(hl, m32));
  __m256i hi = _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32));
  hi = _mm256_add_epi64(hi, _mm256_srli_epi64(hl, 32));
  return _mm256_add_epi64(hi, _mm256_srli_epi64(mid, 32));
}

/// a < b, unsigned 64-bit, per lane (mask of all-ones where true).
inline __m256i cmplt_u64(__m256i a, __m256i b) {
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, kSignBit),
                            _mm256_xor_si256(a, kSignBit));
}

/// x - (q where x >= q), i.e. one conditional subtract toward [0, q).
inline __m256i cond_sub(__m256i x, __m256i q) {
  const __m256i keep = cmplt_u64(x, q);  // x < q: subtract nothing
  return _mm256_sub_epi64(x, _mm256_andnot_si256(keep, q));
}

/// Per-modulus constants for Shoup multiplication by the invariant radix.
struct ShoupCtx {
  __m256i w;       ///< sigma mod q, broadcast
  __m256i wp;      ///< floor(sigma * 2^64 / q), broadcast
  __m256i q;       ///< modulus, broadcast
  __m256i q2;      ///< 2 * modulus, broadcast (for the suffix reduction)
  std::uint64_t qs = 0;  ///< modulus, scalar

  explicit ShoupCtx(const fingerprint::HashParams& p) {
    qs = p.modulus;
    const std::uint64_t ws = p.radix % p.modulus;
    const std::uint64_t wps = static_cast<std::uint64_t>(
        (static_cast<util::u128>(ws) << 64) / p.modulus);
    w = _mm256_set1_epi64x(static_cast<long long>(ws));
    wp = _mm256_set1_epi64x(static_cast<long long>(wps));
    q = _mm256_set1_epi64x(static_cast<long long>(p.modulus));
    q2 = _mm256_set1_epi64x(static_cast<long long>(2 * p.modulus));
  }
};

/// a * sigma mod q, canonical (< q). Valid for any a < 2^64 since
/// q < 2^63: the Shoup estimate is off by at most one q.
inline __m256i shoup_mul(__m256i a, const ShoupCtx& c) {
  const __m256i qest = mul64_hi(a, c.wp);
  const __m256i r = _mm256_sub_epi64(mul64_lo(a, c.w), mul64_lo(qest, c.q));
  return cond_sub(r, c.q);
}

// ---- fingerprint -----------------------------------------------------------

/// AVX2 needs headroom: the suffix accumulator reaches 4q (so q < 2^62)
/// and base codes 0..3 are added without a `% q` (so q > 4).
inline bool moduli_supported(const FingerprintJob& job) {
  auto ok = [](std::uint64_t q) { return q > 4 && q < (1ull << 62); };
  return ok(job.primary.modulus) && ok(job.secondary.modulus);
}

/// Prefix + suffix fingerprints for one strip of up to 4 reads.
void fingerprint_strip(const FingerprintJob& job, unsigned r0, unsigned lanes,
                       const ShoupCtx& ca, const ShoupCtx& cb) {
  const unsigned stride = job.stride;
  std::array<unsigned, 4> len{};
  unsigned max_len = 0;
  for (unsigned l = 0; l < lanes; ++l) {
    len[l] = job.lengths[r0 + l];
    max_len = std::max(max_len, len[l]);
  }
  if (max_len == 0) return;
  const std::uint8_t* codes = job.codes.data();
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i two = _mm256_set1_epi64x(2);

  // Prefixes, front-aligned: P_k = P_{k-1} * sigma + c_k. Lanes past their
  // read length keep evolving on the zero-padded tail but are not stored.
  __m256i pa = _mm256_setzero_si256();
  __m256i pb = _mm256_setzero_si256();
  alignas(32) std::uint64_t spa[4];
  alignas(32) std::uint64_t spb[4];
  for (unsigned k = 0; k < max_len; ++k) {
    const __m256i c = _mm256_set_epi64x(
        lanes > 3 ? codes[static_cast<std::size_t>(r0 + 3) * stride + k] : 0,
        lanes > 2 ? codes[static_cast<std::size_t>(r0 + 2) * stride + k] : 0,
        lanes > 1 ? codes[static_cast<std::size_t>(r0 + 1) * stride + k] : 0,
        codes[static_cast<std::size_t>(r0) * stride + k]);
    pa = cond_sub(_mm256_add_epi64(shoup_mul(pa, ca), c), ca.q);
    pb = cond_sub(_mm256_add_epi64(shoup_mul(pb, cb), c), cb.q);
    _mm256_store_si256(reinterpret_cast<__m256i*>(spa), pa);
    _mm256_store_si256(reinterpret_cast<__m256i*>(spb), pb);
    for (unsigned l = 0; l < lanes; ++l) {
      if (k < len[l]) {
        Key128& out =
            job.prefix[static_cast<std::size_t>(r0 + l) * stride + k];
        out.hi = spa[l];
        out.lo = spb[l];
      }
    }
  }

  // Suffixes, end-aligned: at step k (1-based, from the read's end) every
  // live lane adds c * sigma^(k-1), so the place value is one broadcast
  // per step: S(i) = sum_{j >= i} c_j * sigma^(len-1-j). The multiplier
  // c is 0..3, so c * pow is two masked adds (pow, 2*pow) instead of a
  // multiply; the accumulator peaks below 4q and is re-canonicalized with
  // two conditional subtracts.
  __m256i sa = _mm256_setzero_si256();
  __m256i sb = _mm256_setzero_si256();
  alignas(32) std::uint64_t ssa[4];
  alignas(32) std::uint64_t ssb[4];
  for (unsigned k = 1; k <= max_len; ++k) {
    std::array<std::uint64_t, 4> cl{};
    for (unsigned l = 0; l < lanes; ++l) {
      if (k <= len[l]) {
        cl[l] = codes[static_cast<std::size_t>(r0 + l) * stride +
                      (len[l] - k)];
      }
    }
    const __m256i c = _mm256_set_epi64x(
        static_cast<long long>(cl[3]), static_cast<long long>(cl[2]),
        static_cast<long long>(cl[1]), static_cast<long long>(cl[0]));
    const __m256i bit0 = _mm256_cmpeq_epi64(_mm256_and_si256(c, one), one);
    const __m256i bit1 = _mm256_cmpeq_epi64(_mm256_and_si256(c, two), two);

    const std::uint64_t pa_k = job.pow_primary[k - 1];
    __m256i ta = _mm256_and_si256(
        bit0, _mm256_set1_epi64x(static_cast<long long>(pa_k)));
    ta = _mm256_add_epi64(
        ta, _mm256_and_si256(
                bit1, _mm256_set1_epi64x(static_cast<long long>(2 * pa_k))));
    sa = cond_sub(cond_sub(_mm256_add_epi64(sa, ta), ca.q2), ca.q);

    const std::uint64_t pb_k = job.pow_secondary[k - 1];
    __m256i tb = _mm256_and_si256(
        bit0, _mm256_set1_epi64x(static_cast<long long>(pb_k)));
    tb = _mm256_add_epi64(
        tb, _mm256_and_si256(
                bit1, _mm256_set1_epi64x(static_cast<long long>(2 * pb_k))));
    sb = cond_sub(cond_sub(_mm256_add_epi64(sb, tb), cb.q2), cb.q);

    _mm256_store_si256(reinterpret_cast<__m256i*>(ssa), sa);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ssb), sb);
    for (unsigned l = 0; l < lanes; ++l) {
      if (k <= len[l]) {
        Key128& out = job.suffix[static_cast<std::size_t>(r0 + l) * stride +
                                 (len[l] - k)];
        out.hi = ssa[l];
        out.lo = ssb[l];
      }
    }
  }
}

void avx2_fingerprint(const FingerprintJob& job) {
  const ShoupCtx ca(job.primary);
  const ShoupCtx cb(job.secondary);
  for (unsigned r0 = 0; r0 < job.count; r0 += 4) {
    fingerprint_strip(job, r0, std::min(4u, job.count - r0), ca, cb);
  }
}

// ---- match bounds ----------------------------------------------------------

/// Branchless lower/upper bound for 4 needles at once. Every lane follows
/// the same halving schedule (the search length is shared), so the loop
/// has no data-dependent branches; the probed keys come in via vpgatherqq.
template <bool Upper>
inline void bounds4(const Key128* hay, std::size_t n, const Key128* needles,
                    std::uint32_t* out) {
  const long long* base64 = reinterpret_cast<const long long*>(hay);
  const __m256i n_hi = _mm256_set_epi64x(
      static_cast<long long>(needles[3].hi),
      static_cast<long long>(needles[2].hi),
      static_cast<long long>(needles[1].hi),
      static_cast<long long>(needles[0].hi));
  const __m256i n_lo = _mm256_set_epi64x(
      static_cast<long long>(needles[3].lo),
      static_cast<long long>(needles[2].lo),
      static_cast<long long>(needles[1].lo),
      static_cast<long long>(needles[0].lo));

  // pred(h): advance past h — h < needle for lower_bound, h <= needle for
  // upper_bound.
  auto pred = [&](__m256i h_hi, __m256i h_lo) {
    if constexpr (Upper) {
      // h <= n  <=>  !(n < h)
      const __m256i n_lt_h = _mm256_or_si256(
          cmplt_u64(n_hi, h_hi),
          _mm256_and_si256(_mm256_cmpeq_epi64(n_hi, h_hi),
                           cmplt_u64(n_lo, h_lo)));
      return _mm256_xor_si256(n_lt_h, _mm256_set1_epi64x(-1));
    } else {
      return _mm256_or_si256(
          cmplt_u64(h_hi, n_hi),
          _mm256_and_si256(_mm256_cmpeq_epi64(h_hi, n_hi),
                           cmplt_u64(h_lo, n_lo)));
    }
  };

  __m256i base = _mm256_setzero_si256();
  std::size_t rem = n;
  while (rem > 1) {
    const std::size_t half = rem >> 1;
    const __m256i idx = _mm256_add_epi64(
        base, _mm256_set1_epi64x(static_cast<long long>(half - 1)));
    // Key128 is 16 bytes: hi at element offset 2*idx, lo at 2*idx + 1.
    const __m256i off = _mm256_slli_epi64(idx, 1);
    const __m256i h_hi = _mm256_i64gather_epi64(base64, off, 8);
    const __m256i h_lo = _mm256_i64gather_epi64(base64 + 1, off, 8);
    const __m256i adv = pred(h_hi, h_lo);
    base = _mm256_add_epi64(
        base, _mm256_and_si256(
                  adv, _mm256_set1_epi64x(static_cast<long long>(half))));
    rem -= half;
  }
  // Final probe at `base` itself; the mask is -1 where the answer moves
  // one past it.
  const __m256i off = _mm256_slli_epi64(base, 1);
  const __m256i h_hi = _mm256_i64gather_epi64(base64, off, 8);
  const __m256i h_lo = _mm256_i64gather_epi64(base64 + 1, off, 8);
  const __m256i ans = _mm256_sub_epi64(base, pred(h_hi, h_lo));
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), ans);
  for (unsigned l = 0; l < 4; ++l) {
    out[l] = static_cast<std::uint32_t>(lanes[l]);
  }
}

void avx2_match_bounds(std::span<const Key128> needles,
                       std::span<const Key128> haystack,
                       std::span<std::uint32_t> lower,
                       std::span<std::uint32_t> upper) {
  if (haystack.empty()) {
    std::fill(lower.begin(), lower.end(), 0u);
    std::fill(upper.begin(), upper.end(), 0u);
    return;
  }
  std::size_t i = 0;
  for (; i + 4 <= needles.size(); i += 4) {
    bounds4<false>(haystack.data(), haystack.size(), needles.data() + i,
                   lower.data() + i);
    bounds4<true>(haystack.data(), haystack.size(), needles.data() + i,
                  upper.data() + i);
  }
  for (; i < needles.size(); ++i) {
    lower[i] = static_cast<std::uint32_t>(
        std::lower_bound(haystack.begin(), haystack.end(), needles[i]) -
        haystack.begin());
    upper[i] = static_cast<std::uint32_t>(
        std::upper_bound(haystack.begin(), haystack.end(), needles[i]) -
        haystack.begin());
  }
}

// ---- sort pairs ------------------------------------------------------------

void avx2_sort_pairs(std::span<Key128> keys, std::span<std::uint64_t> values) {
  const std::size_t n = keys.size();
  if (n < 2) return;

  // Counting pre-pass over all 16 digits in one sweep, spread across four
  // banks so consecutive increments rarely hit the same cache line /
  // store-forward chain.
  using Bank = std::array<std::array<std::uint64_t, 256>, 4>;
  std::vector<Bank> banks(Key128::kDigits);
  for (auto& b : banks) {
    for (auto& lane : b) lane.fill(0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned bank = i & 3;
    const std::uint64_t lo = keys[i].lo;
    const std::uint64_t hi = keys[i].hi;
    for (unsigned j = 0; j < 8; ++j) {
      ++banks[j][bank][(lo >> (8 * j)) & 0xff];
      ++banks[8 + j][bank][(hi >> (8 * j)) & 0xff];
    }
  }
  // Vector merge of the four banks (256 u64 counters = 64 vector adds).
  std::array<std::array<std::uint64_t, 256>, Key128::kDigits> hist;
  for (unsigned d = 0; d < Key128::kDigits; ++d) {
    for (unsigned b = 0; b < 256; b += 4) {
      __m256i sum = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&banks[d][0][b]));
      for (unsigned bank = 1; bank < 4; ++bank) {
        sum = _mm256_add_epi64(
            sum, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i*>(&banks[d][bank][b])));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&hist[d][b]), sum);
    }
  }

  std::vector<Key128> tmp_k(n);
  std::vector<std::uint64_t> tmp_v(n);
  Key128* src_k = keys.data();
  std::uint64_t* src_v = values.data();
  Key128* dst_k = tmp_k.data();
  std::uint64_t* dst_v = tmp_v.data();

  for (unsigned d = 0; d < Key128::kDigits; ++d) {
    const auto& h = hist[d];
    bool degenerate = false;
    for (unsigned b = 0; b < 256; ++b) {
      if (h[b] == n) {
        degenerate = true;
        break;
      }
    }
    if (degenerate) continue;

    std::array<std::uint64_t, 256> offsets;
    std::uint64_t running = 0;
    for (unsigned b = 0; b < 256; ++b) {
      offsets[b] = running;
      running += h[b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t at = offsets[src_k[i].digit(d)]++;
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(dst_k + at),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src_k + i)));
      dst_v[at] = src_v[i];
    }
    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
  }

  if (src_k != keys.data()) {
    std::memcpy(keys.data(), src_k, n * sizeof(Key128));
    std::memcpy(values.data(), src_v, n * sizeof(std::uint64_t));
  }
}

#endif  // LASAGNA_AVX2_IMPL

class Avx2Backend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const override { return "avx2"; }

  [[nodiscard]] bool available() const override {
#ifdef LASAGNA_AVX2_IMPL
    return cpu_features().avx2;
#else
    return false;
#endif
  }

  void fingerprint(const FingerprintJob& job, DeviceContext* ctx) override {
#ifdef LASAGNA_AVX2_IMPL
    require_available();
    if (job.count == 0) return;
    if (!moduli_supported(job)) {
      // Tiny or >= 2^62 moduli (e.g. FingerprintConfig::weak in tests)
      // violate the vector path's headroom assumptions; results must stay
      // byte-identical, so hand the whole job to scalar.
      scalar_backend().fingerprint(job, ctx);
      return;
    }
    avx2_fingerprint(job);
#else
    (void)job;
    (void)ctx;
    throw_not_compiled();
#endif
  }

  void match_bounds(std::span<const Key128> needles,
                    std::span<const Key128> haystack,
                    std::span<std::uint32_t> lower,
                    std::span<std::uint32_t> upper, DeviceContext*) override {
    if (lower.size() != needles.size() || upper.size() != needles.size()) {
      throw std::invalid_argument("match_bounds: output size mismatch");
    }
#ifdef LASAGNA_AVX2_IMPL
    require_available();
    avx2_match_bounds(needles, haystack, lower, upper);
#else
    (void)haystack;
    throw_not_compiled();
#endif
  }

  void sort_pairs(std::span<Key128> keys, std::span<std::uint64_t> values,
                  DeviceContext*) override {
    if (keys.size() != values.size()) {
      throw std::invalid_argument("sort_pairs: key/value size mismatch");
    }
#ifdef LASAGNA_AVX2_IMPL
    require_available();
    avx2_sort_pairs(keys, values);
#else
    throw_not_compiled();
#endif
  }

 private:
  void require_available() const {
    if (!available()) {
      throw std::runtime_error("avx2 backend: cpu does not support AVX2");
    }
  }
  [[noreturn]] static void throw_not_compiled() {
    throw std::runtime_error("avx2 backend: not compiled in (LASAGNA_AVX2)");
  }
};

}  // namespace

Backend& avx2_backend() {
  static Avx2Backend backend;
  return backend;
}

}  // namespace lasagna::kernel
