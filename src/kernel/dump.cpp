#include "kernel/dump.hpp"

#include <cstring>
#include <stdexcept>

namespace lasagna::kernel {

namespace {

// Local FNV-1a (dist/ has an identical fold; kernel/ sits below dist in
// the layering, so the constants live here too).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Sanity cap on a single blob: a corrupted size field must not drive a
/// multi-terabyte allocation before the checksum gets a chance to fail.
constexpr std::uint64_t kMaxBlobBytes = 1ull << 36;  // 64 GiB

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::ifstream& in, const char* what) {
  std::uint32_t v = 0;
  if (!in.read(reinterpret_cast<char*>(&v), sizeof(v))) {
    throw std::runtime_error(std::string("kernel dump truncated reading ") +
                             what);
  }
  return v;
}

std::uint64_t read_u64(std::ifstream& in, const char* what) {
  std::uint64_t v = 0;
  if (!in.read(reinterpret_cast<char*>(&v), sizeof(v))) {
    throw std::runtime_error(std::string("kernel dump truncated reading ") +
                             what);
  }
  return v;
}

}  // namespace

std::uint64_t fnv1a_bytes(std::span<const std::byte> bytes) {
  std::uint64_t h = kFnvOffset;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

std::string dump_filename(KernelId id) {
  return std::string(kernel_name(id)) + ".lkd";
}

// ---- DumpWriter ------------------------------------------------------------

DumpWriter::DumpWriter(const std::filesystem::path& path, KernelId kernel,
                       bool force)
    : path_(path) {
  if (!force && std::filesystem::exists(path)) {
    throw std::runtime_error("kernel dump exists (use force to overwrite): " +
                             path.string());
  }
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("cannot open kernel dump for writing: " +
                             path.string());
  }
  write_u32(out_, kDumpMagic);
  write_u32(out_, kDumpVersion);
  write_u32(out_, static_cast<std::uint32_t>(kernel));
  write_u32(out_, 0);  // reserved
  write_u64(out_, 0);  // record count, patched by close()
}

DumpWriter::~DumpWriter() {
  try {
    close();
  } catch (...) {  // NOLINT(bugprone-empty-catch): destructors cannot throw
  }
}

void DumpWriter::append(const std::array<std::uint64_t, 8>& meta,
                        std::span<const std::byte> input,
                        std::span<const std::byte> output) {
  for (const std::uint64_t m : meta) write_u64(out_, m);
  write_u64(out_, input.size());
  write_u64(out_, output.size());
  write_u64(out_, fnv1a_bytes(input));
  write_u64(out_, fnv1a_bytes(output));
  out_.write(reinterpret_cast<const char*>(input.data()),
             static_cast<std::streamsize>(input.size()));
  out_.write(reinterpret_cast<const char*>(output.data()),
             static_cast<std::streamsize>(output.size()));
  if (!out_) {
    throw std::runtime_error("kernel dump write failed: " + path_.string());
  }
  ++records_;
}

void DumpWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(16);  // past magic/version/kernel/reserved
  write_u64(out_, records_);
  out_.flush();
  if (!out_) {
    throw std::runtime_error("kernel dump close failed: " + path_.string());
  }
  out_.close();
}

// ---- DumpReader ------------------------------------------------------------

DumpReader::DumpReader(const std::filesystem::path& path) : path_(path) {
  in_.open(path, std::ios::binary);
  if (!in_) {
    throw std::runtime_error("cannot open kernel dump: " + path.string());
  }
  if (read_u32(in_, "magic") != kDumpMagic) {
    throw std::runtime_error("not a kernel dump (bad magic): " +
                             path.string());
  }
  const std::uint32_t version = read_u32(in_, "version");
  if (version != kDumpVersion) {
    throw std::runtime_error("unsupported kernel dump version " +
                             std::to_string(version) + ": " + path.string());
  }
  const std::uint32_t kernel = read_u32(in_, "kernel id");
  if (kernel < static_cast<std::uint32_t>(KernelId::kFingerprint) ||
      kernel > static_cast<std::uint32_t>(KernelId::kSortPairs)) {
    throw std::runtime_error("unknown kernel id " + std::to_string(kernel) +
                             " in dump: " + path.string());
  }
  kernel_ = static_cast<KernelId>(kernel);
  (void)read_u32(in_, "reserved");
  records_ = read_u64(in_, "record count");
}

bool DumpReader::next(DumpRecord& record) {
  if (read_ == records_) return false;
  for (std::uint64_t& m : record.meta) m = read_u64(in_, "record meta");
  const std::uint64_t input_bytes = read_u64(in_, "input size");
  const std::uint64_t output_bytes = read_u64(in_, "output size");
  if (input_bytes > kMaxBlobBytes || output_bytes > kMaxBlobBytes) {
    throw std::runtime_error("kernel dump blob size implausible: " +
                             path_.string());
  }
  const std::uint64_t input_fnv = read_u64(in_, "input checksum");
  const std::uint64_t output_fnv = read_u64(in_, "output checksum");
  record.input.resize(input_bytes);
  record.output.resize(output_bytes);
  if (!in_.read(reinterpret_cast<char*>(record.input.data()),
                static_cast<std::streamsize>(input_bytes)) ||
      !in_.read(reinterpret_cast<char*>(record.output.data()),
                static_cast<std::streamsize>(output_bytes))) {
    throw std::runtime_error("kernel dump truncated reading blobs: " +
                             path_.string());
  }
  if (fnv1a_bytes(record.input) != input_fnv) {
    throw std::runtime_error("kernel dump input checksum mismatch: " +
                             path_.string());
  }
  if (fnv1a_bytes(record.output) != output_fnv) {
    throw std::runtime_error("kernel dump output checksum mismatch: " +
                             path_.string());
  }
  ++read_;
  return true;
}

// ---- CaptureSession --------------------------------------------------------

CaptureSession* CaptureSession::active_ = nullptr;

CaptureSession* CaptureSession::active() { return active_; }

CaptureSession::CaptureSession(std::filesystem::path dir,
                               std::size_t limit_per_kernel, bool force)
    : dir_(std::move(dir)), limit_(limit_per_kernel), force_(force) {
  std::filesystem::create_directories(dir_);
  // Fail fast at session open, not at the first mid-run capture: an
  // existing dump in the target directory means a golden would be
  // clobbered.
  if (!force_) {
    for (const KernelId id : {KernelId::kFingerprint, KernelId::kMatchBounds,
                              KernelId::kSortPairs}) {
      const auto path = dir_ / dump_filename(id);
      if (std::filesystem::exists(path)) {
        throw std::runtime_error(
            "kernel dump exists (use force to overwrite): " + path.string());
      }
    }
  }
}

CaptureSession::~CaptureSession() {
  try {
    close();
  } catch (...) {  // NOLINT(bugprone-empty-catch): destructors cannot throw
  }
}

void CaptureSession::record(KernelId kernel,
                            const std::array<std::uint64_t, 8>& meta,
                            std::span<const std::byte> input,
                            std::span<const std::byte> output) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = writers_.find(kernel);
  if (it == writers_.end()) {
    it = writers_
             .emplace(kernel, std::make_unique<DumpWriter>(
                                  dir_ / dump_filename(kernel), kernel,
                                  force_))
             .first;
  }
  if (it->second->records() >= limit_) return;
  it->second->append(meta, input, output);
}

std::uint64_t CaptureSession::captured(KernelId kernel) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = writers_.find(kernel);
  return it == writers_.end() ? 0 : it->second->records();
}

void CaptureSession::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, writer] : writers_) writer->close();
}

ScopedCapture::ScopedCapture(CaptureSession& session)
    : previous_(CaptureSession::active_) {
  CaptureSession::active_ = &session;
}

ScopedCapture::~ScopedCapture() { CaptureSession::active_ = previous_; }

std::vector<std::byte> concat_bytes(
    std::initializer_list<std::span<const std::byte>> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<std::byte> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace lasagna::kernel
