#include "kernel/replay.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "gpu/device.hpp"
#include "kernel/dump.hpp"
#include "util/modmath.hpp"

namespace lasagna::kernel {

namespace {

using Clock = std::chrono::steady_clock;
using gpu::Key128;

void require(bool ok, const char* what) {
  if (!ok) {
    throw std::runtime_error(std::string("kernel dump record malformed: ") +
                             what);
  }
}

template <typename T>
std::span<const T> view_as(std::span<const std::byte> bytes,
                           std::size_t offset, std::size_t count) {
  return {reinterpret_cast<const T*>(bytes.data() + offset), count};
}

std::vector<std::uint64_t> build_pow(std::uint64_t radix,
                                     std::uint64_t modulus, std::size_t n) {
  std::vector<std::uint64_t> pow(n);
  std::uint64_t p = 1 % modulus;
  for (std::size_t i = 0; i < n; ++i) {
    pow[i] = p;
    p = util::mulmod(p, radix, modulus);
  }
  return pow;
}

/// Replay one fingerprint record; returns the produced output blob.
std::vector<std::byte> replay_fingerprint(const DumpRecord& rec,
                                          Backend& backend,
                                          DeviceContext& ctx,
                                          std::uint64_t& elements,
                                          double& wall_seconds) {
  const auto count = static_cast<unsigned>(rec.meta[0]);
  const auto stride = static_cast<unsigned>(rec.meta[1]);
  const std::size_t total = static_cast<std::size_t>(count) * stride;
  require(rec.input.size() == total + count * sizeof(std::uint16_t),
          "fingerprint input size");
  require(rec.output.size() == 2 * total * sizeof(Key128),
          "fingerprint output size");

  FingerprintJob job;
  job.count = count;
  job.stride = stride;
  job.codes = view_as<std::uint8_t>(rec.input, 0, total);
  job.lengths = view_as<std::uint16_t>(rec.input, total, count);
  job.primary = {rec.meta[2], rec.meta[3]};
  job.secondary = {rec.meta[4], rec.meta[5]};
  require(job.primary.modulus != 0 && job.secondary.modulus != 0,
          "fingerprint modulus");
  const auto pow_a = build_pow(job.primary.radix, job.primary.modulus,
                               static_cast<std::size_t>(stride) + 1);
  const auto pow_b = build_pow(job.secondary.radix, job.secondary.modulus,
                               static_cast<std::size_t>(stride) + 1);
  job.pow_primary = pow_a;
  job.pow_secondary = pow_b;

  std::uint64_t valid = 0;
  for (const std::uint16_t len : job.lengths) {
    require(len <= stride, "fingerprint read length");
    valid += len;
  }
  elements = 2 * valid;  // one prefix + one suffix fingerprint per base

  std::vector<Key128> prefix(total);
  std::vector<Key128> suffix(total);
  job.prefix = prefix.data();
  job.suffix = suffix.data();

  const auto t0 = Clock::now();
  backend.fingerprint(job, &ctx);
  wall_seconds += std::chrono::duration<double>(Clock::now() - t0).count();

  return concat_bytes({std::as_bytes(std::span<const Key128>(prefix)),
                       std::as_bytes(std::span<const Key128>(suffix))});
}

std::vector<std::byte> replay_match_bounds(const DumpRecord& rec,
                                           Backend& backend,
                                           DeviceContext& ctx,
                                           std::uint64_t& elements,
                                           double& wall_seconds) {
  const std::size_t nn = rec.meta[0];
  const std::size_t nh = rec.meta[1];
  require(rec.input.size() == (nn + nh) * sizeof(Key128),
          "match_bounds input size");
  require(rec.output.size() == 2 * nn * sizeof(std::uint32_t),
          "match_bounds output size");
  const auto needles = view_as<Key128>(rec.input, 0, nn);
  const auto haystack = view_as<Key128>(rec.input, nn * sizeof(Key128), nh);
  elements = nn;

  std::vector<std::uint32_t> lower(nn);
  std::vector<std::uint32_t> upper(nn);
  const auto t0 = Clock::now();
  backend.match_bounds(needles, haystack, lower, upper, &ctx);
  wall_seconds += std::chrono::duration<double>(Clock::now() - t0).count();

  return concat_bytes(
      {std::as_bytes(std::span<const std::uint32_t>(lower)),
       std::as_bytes(std::span<const std::uint32_t>(upper))});
}

std::vector<std::byte> replay_sort_pairs(const DumpRecord& rec,
                                         Backend& backend, DeviceContext& ctx,
                                         std::uint64_t& elements,
                                         double& wall_seconds) {
  const std::size_t n = rec.meta[0];
  require(rec.input.size() ==
              n * (sizeof(Key128) + sizeof(std::uint64_t)),
          "sort_pairs input size");
  require(rec.output.size() == rec.input.size(), "sort_pairs output size");
  elements = n;

  std::vector<Key128> keys(n);
  std::vector<std::uint64_t> values(n);
  std::memcpy(keys.data(), rec.input.data(), n * sizeof(Key128));
  std::memcpy(values.data(), rec.input.data() + n * sizeof(Key128),
              n * sizeof(std::uint64_t));

  const auto t0 = Clock::now();
  backend.sort_pairs(keys, values, &ctx);
  wall_seconds += std::chrono::duration<double>(Clock::now() - t0).count();

  return concat_bytes(
      {std::as_bytes(std::span<const Key128>(keys)),
       std::as_bytes(std::span<const std::uint64_t>(values))});
}

}  // namespace

ReplayReport replay_dump(const std::filesystem::path& dir, Backend& backend,
                         std::size_t repeat) {
  if (repeat == 0) repeat = 1;
  ReplayReport report;
  // The simulated backend replays on a fresh device so its modeled clock
  // is attributable to the dump alone.
  gpu::Device device;
  DeviceContext ctx{&device, nullptr, false};

  for (const KernelId id : {KernelId::kFingerprint, KernelId::kMatchBounds,
                            KernelId::kSortPairs}) {
    const auto path = dir / dump_filename(id);
    if (!std::filesystem::exists(path)) continue;

    KernelReplayStats stats;
    stats.kernel = id;
    for (std::size_t pass = 0; pass < repeat; ++pass) {
      DumpReader reader(path);
      DumpRecord rec;
      const double modeled_before = device.modeled_seconds();
      while (reader.next(rec)) {
        std::uint64_t elements = 0;
        std::vector<std::byte> produced;
        switch (id) {
          case KernelId::kFingerprint:
            produced = replay_fingerprint(rec, backend, ctx, elements,
                                          stats.wall_seconds);
            break;
          case KernelId::kMatchBounds:
            produced = replay_match_bounds(rec, backend, ctx, elements,
                                           stats.wall_seconds);
            break;
          case KernelId::kSortPairs:
            produced = replay_sort_pairs(rec, backend, ctx, elements,
                                         stats.wall_seconds);
            break;
        }
        ++stats.replayed;
        if (pass == 0) {
          ++stats.records;
          stats.elements += elements;
          stats.bytes += rec.input.size() + rec.output.size();
          if (produced.size() != rec.output.size() ||
              std::memcmp(produced.data(), rec.output.data(),
                          produced.size()) != 0) {
            ++stats.mismatched;
          }
        }
      }
      stats.modeled_seconds += device.modeled_seconds() - modeled_before;
    }
    report.kernels.push_back(stats);
  }
  if (report.kernels.empty()) {
    throw std::runtime_error("no kernel dump files found in: " +
                             dir.string());
  }
  return report;
}

}  // namespace lasagna::kernel
