// Kernel dump capture: the golden-testbed half of the multi-backend
// harness (minimap2-acceleration style — see DESIGN.md "Kernel dump
// format"). A CaptureSession installed during a pipeline run records the
// exact inputs and outputs of each hot-kernel invocation into one
// versioned binary file per kernel; kernel_replay (kernel/replay.hpp)
// later re-executes any backend against those inputs and byte-compares
// against the captured outputs.
//
// On-disk format (little-endian, one `.lkd` file per kernel):
//
//   header   u32 magic 'LKDF'  u32 version  u32 kernel_id  u32 reserved
//            u64 record_count                (patched when the file closes)
//   record*  u64 meta[8]                     (kernel-specific dimensions)
//            u64 input_bytes  u64 output_bytes
//            u64 input_fnv1a  u64 output_fnv1a
//            byte input[input_bytes]  byte output[output_bytes]
//
// Meta layouts:
//   fingerprint:  {count, stride, primary_radix, primary_modulus,
//                  secondary_radix, secondary_modulus, 0, 0}
//                 input  = codes[count*stride] u8 ++ lengths[count] u16
//                 output = prefix[count*stride] ++ suffix[count*stride],
//                          Key128 each (tails past a read's length zero)
//   match_bounds: {needle_count, haystack_count, 0...}
//                 input  = needles ++ haystack, Key128 each
//                 output = lower ++ upper, u32 each
//   sort_pairs:   {count, 0...}
//                 input  = keys (Key128) ++ values (u64), pre-sort
//                 output = keys ++ values, post-sort
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "kernel/backend.hpp"

namespace lasagna::kernel {

inline constexpr std::uint32_t kDumpMagic = 0x4644'4b4cu;  // "LKDF" on disk
inline constexpr std::uint32_t kDumpVersion = 1;

/// FNV-1a over a byte range (the dump format's checksum).
[[nodiscard]] std::uint64_t fnv1a_bytes(std::span<const std::byte> bytes);

/// Dump file name for one kernel, e.g. "fingerprint.lkd".
[[nodiscard]] std::string dump_filename(KernelId id);

/// One captured kernel invocation.
struct DumpRecord {
  std::array<std::uint64_t, 8> meta{};
  std::vector<std::byte> input;
  std::vector<std::byte> output;
};

/// Streaming writer for one kernel's dump file. Refuses to overwrite an
/// existing file unless `force` (satellite: dumps are expensive goldens;
/// clobbering one silently invalidates every replay that trusted it).
class DumpWriter {
 public:
  DumpWriter(const std::filesystem::path& path, KernelId kernel, bool force);
  ~DumpWriter();
  DumpWriter(const DumpWriter&) = delete;
  DumpWriter& operator=(const DumpWriter&) = delete;

  void append(const std::array<std::uint64_t, 8>& meta,
              std::span<const std::byte> input,
              std::span<const std::byte> output);

  /// Patch the header's record count and flush. Called by the destructor
  /// if not called explicitly.
  void close();

  [[nodiscard]] std::uint64_t records() const { return records_; }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
  bool closed_ = false;
};

/// Validating reader for one dump file. The constructor checks magic,
/// version and kernel id; next() checks sizes and checksums. Any
/// malformed or truncated content throws std::runtime_error.
class DumpReader {
 public:
  explicit DumpReader(const std::filesystem::path& path);

  [[nodiscard]] KernelId kernel() const { return kernel_; }
  [[nodiscard]] std::uint64_t records() const { return records_; }

  /// Read the next record; false when all records were consumed.
  bool next(DumpRecord& record);

 private:
  std::filesystem::path path_;
  std::ifstream in_;
  KernelId kernel_{};
  std::uint64_t records_ = 0;
  std::uint64_t read_ = 0;
};

/// A capture session: one directory receiving the three kernel dump
/// files. Install process-wide with ScopedCapture; the pipeline dispatch
/// sites then record every invocation (up to `limit_per_kernel` each, to
/// bound dump size on large runs). Thread-safe; capture order is the call
/// order under the session mutex, which the pipeline's serialized kernel
/// sites make deterministic for a fixed seed.
class CaptureSession {
 public:
  CaptureSession(std::filesystem::path dir, std::size_t limit_per_kernel,
                 bool force);
  ~CaptureSession();

  /// The installed session, or nullptr (capture disabled — the common
  /// case; dispatch sites pay one pointer load).
  [[nodiscard]] static CaptureSession* active();

  void record(KernelId kernel, const std::array<std::uint64_t, 8>& meta,
              std::span<const std::byte> input,
              std::span<const std::byte> output);

  [[nodiscard]] std::uint64_t captured(KernelId kernel) const;
  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  /// Close all writers (flushing headers). Implied by the destructor.
  void close();

 private:
  friend class ScopedCapture;
  static CaptureSession* active_;

  mutable std::mutex mutex_;
  std::filesystem::path dir_;
  std::size_t limit_;
  bool force_;
  std::map<KernelId, std::unique_ptr<DumpWriter>> writers_;
};

/// RAII install of the active capture session.
class ScopedCapture {
 public:
  explicit ScopedCapture(CaptureSession& session);
  ~ScopedCapture();
  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

 private:
  CaptureSession* previous_;
};

// -- capture helpers for the dispatch sites ---------------------------------

/// View any trivially-copyable span as bytes.
template <typename T>
[[nodiscard]] std::span<const std::byte> as_bytes_span(std::span<const T> s) {
  return std::as_bytes(s);
}

/// Concatenate several byte views into one blob (capture is off the hot
/// path; the copy only happens while dumping).
[[nodiscard]] std::vector<std::byte> concat_bytes(
    std::initializer_list<std::span<const std::byte>> parts);

}  // namespace lasagna::kernel
