// The simulated-GPU backend: the paper's kernels executed on the simulated
// CUDA device (gpu::Device), charging its modeled clock. This is the
// reference implementation every other backend is byte-compared against,
// and the one the pipeline uses by default.
//
// The fingerprint kernels moved here verbatim from fingerprint/kernels.cpp:
// the block-per-read Hillis-Steele prefix scan + suffix derivation (paper
// Figs 5/6) and the naive thread-per-read rolling hash (charged the
// uncoalesced-transaction penalty the paper's "excessive memory throttling"
// corresponds to). match_bounds and sort_pairs wrap the device primitives
// (gpu/primitives.hpp) with the alloc/H2D/kernel/D2H sequence the pipeline
// performs — the pipeline's own device dispatch sites keep their inline,
// buffer-reusing versions (see DESIGN.md), so these wrappers serve replay
// and benchmarking.
#include <bit>
#include <cstring>
#include <stdexcept>

#include "gpu/device.hpp"
#include "gpu/key128.hpp"
#include "gpu/primitives.hpp"
#include "gpu/stream.hpp"
#include "kernel/backend.hpp"
#include "util/modmath.hpp"

namespace lasagna::kernel {

namespace {

using fingerprint::HashParams;
using gpu::Key128;
using util::addmod;
using util::mulmod;
using util::submod;

/// The Hillis-Steele prefix scan for one hash function, executed inside one
/// block. `work` and `next` are shared-memory arrays of block_dim elements.
void block_prefix_scan(const gpu::BlockContext& ctx, unsigned len,
                       const HashParams& params,
                       std::span<const std::uint8_t> codes,
                       std::span<std::uint64_t> work,
                       std::span<std::uint64_t> next,
                       std::span<std::uint64_t> out) {
  const std::uint64_t q = params.modulus;

  // Phase 0: each thread encodes its base into shared memory (array E in
  // Fig 5 -- codes are already 0..3, so this is a plain load).
  ctx.for_each_thread([&](unsigned tid) {
    if (tid < len) work[tid] = codes[tid] % q;
  });

  // Doubling steps. M[offset] = sigma^offset mod q is recomputed per step
  // (cheap) rather than read from the device table, matching the shared-
  // memory-resident loop of the real kernel.
  std::uint64_t place = params.radix % q;  // sigma^offset for offset=1
  for (unsigned offset = 1; offset < len; offset <<= 1) {
    ctx.for_each_thread([&](unsigned tid) {
      if (tid >= len) return;
      next[tid] = tid >= offset
                      ? addmod(mulmod(work[tid - offset], place, q),
                               work[tid], q)
                      : work[tid];
    });
    std::swap(work, next);
    place = mulmod(place, place, q);  // sigma^(2*offset)
  }

  ctx.for_each_thread([&](unsigned tid) {
    if (tid < len) out[tid] = work[tid];
  });
}

/// Suffix fingerprints from prefix fingerprints (Fig 6):
///   S[0] = P[len-1];  S[i] = (P[len-1] - P[i-1] * sigma^(len-i)) mod q.
void block_suffix_from_prefix(const gpu::BlockContext& ctx, unsigned len,
                              const HashParams& params,
                              std::span<const std::uint64_t> pow,
                              std::span<const std::uint64_t> prefix,
                              std::span<std::uint64_t> out) {
  const std::uint64_t q = params.modulus;
  const std::uint64_t whole = prefix[len - 1];
  ctx.for_each_thread([&](unsigned tid) {
    if (tid >= len) return;
    if (tid == 0) {
      out[0] = whole;
      return;
    }
    out[tid] = submod(whole, mulmod(prefix[tid - 1], pow[len - tid], q), q);
  });
}

/// Device-resident copies of the job's inputs (the pipeline uploads encoded
/// reads, not fingerprints).
struct DeviceBatch {
  gpu::DeviceBuffer<std::uint8_t> codes;
  gpu::DeviceBuffer<std::uint16_t> lengths;
};

DeviceBatch upload(gpu::Device& dev, const FingerprintJob& job) {
  DeviceBatch batch;
  batch.codes = dev.alloc<std::uint8_t>(job.codes.size());
  batch.lengths = dev.alloc<std::uint16_t>(job.lengths.size());
  dev.copy_to_device(job.codes, batch.codes.span());
  dev.copy_to_device(job.lengths, batch.lengths.span());
  return batch;
}

void download(gpu::Device& dev, const FingerprintJob& job,
              const gpu::DeviceBuffer<Key128>& d_prefix,
              const gpu::DeviceBuffer<Key128>& d_suffix) {
  const std::size_t total =
      static_cast<std::size_t>(job.count) * job.stride;
  dev.copy_to_host(std::span<const Key128>(d_prefix.span()),
                   std::span<Key128>(job.prefix, total));
  dev.copy_to_host(std::span<const Key128>(d_suffix.span()),
                   std::span<Key128>(job.suffix, total));
}

void run_block_per_read(gpu::Device& dev, const FingerprintJob& job,
                        gpu::StreamPair* streams, gpu::Stream* stream) {
  const unsigned stride = job.stride;
  const std::size_t total = static_cast<std::size_t>(job.count) * stride;

  const DeviceBatch batch = upload(dev, job);
  auto d_prefix = dev.alloc<Key128>(total);
  auto d_suffix = dev.alloc<Key128>(total);

  // Shared memory per block: two double-buffered u64 arrays (work/next) plus
  // one output staging array per hash function.
  const std::size_t shared_bytes = static_cast<std::size_t>(stride) * 8 * 3;

  if (streams != nullptr) streams->begin_kernel(*stream);
  dev.launch(job.count, stride, shared_bytes, [&](gpu::BlockContext& ctx) {
    const unsigned r = ctx.block_idx();
    const unsigned len = batch.lengths[r];
    if (len == 0) return;
    const std::span<const std::uint8_t> codes =
        batch.codes.span().subspan(static_cast<std::size_t>(r) * stride, len);
    auto work = ctx.shared_as<std::uint64_t>(3 * stride);
    auto buf0 = work.subspan(0, stride);
    auto buf1 = work.subspan(stride, stride);
    auto stage = work.subspan(2 * static_cast<std::size_t>(stride), stride);

    Key128* prefix_row = d_prefix.data() + static_cast<std::size_t>(r) * stride;
    Key128* suffix_row = d_suffix.data() + static_cast<std::size_t>(r) * stride;

    // Primary hash: prefix scan then suffix derivation.
    block_prefix_scan(ctx, len, job.primary, codes, buf0, buf1, stage);
    ctx.for_each_thread([&](unsigned tid) {
      if (tid < len) prefix_row[tid].hi = stage[tid];
    });
    block_suffix_from_prefix(ctx, len, job.primary, job.pow_primary, stage,
                             buf0);
    ctx.for_each_thread([&](unsigned tid) {
      if (tid < len) suffix_row[tid].hi = buf0[tid];
    });

    // Secondary hash.
    block_prefix_scan(ctx, len, job.secondary, codes, buf0, buf1, stage);
    ctx.for_each_thread([&](unsigned tid) {
      if (tid < len) prefix_row[tid].lo = stage[tid];
    });
    block_suffix_from_prefix(ctx, len, job.secondary, job.pow_secondary,
                             stage, buf0);
    ctx.for_each_thread([&](unsigned tid) {
      if (tid < len) suffix_row[tid].lo = buf0[tid];
    });
  });

  // Cost model: coalesced reads of the codes, coalesced writes of both
  // fingerprint arrays; ~2 modmul ops per element per doubling step per hash.
  const unsigned steps = stride <= 1 ? 1 : std::bit_width(stride - 1);
  dev.charge_kernel(total * (1 + 2 * sizeof(Key128)),
                    static_cast<std::uint64_t>(total) * steps * 2 * 2);
  if (streams != nullptr) streams->end_kernel(*stream);

  download(dev, job, d_prefix, d_suffix);
}

void run_thread_per_read(gpu::Device& dev, const FingerprintJob& job,
                         gpu::StreamPair* streams, gpu::Stream* stream) {
  const unsigned stride = job.stride;
  const std::size_t total = static_cast<std::size_t>(job.count) * stride;

  const DeviceBatch batch = upload(dev, job);
  auto d_prefix = dev.alloc<Key128>(total);
  auto d_suffix = dev.alloc<Key128>(total);

  // One thread handles one whole read with a sequential rolling hash; block
  // size is an arbitrary tiling of the read array.
  constexpr unsigned kBlock = 128;
  const unsigned blocks = (job.count + kBlock - 1) / kBlock;
  if (streams != nullptr) streams->begin_kernel(*stream);
  dev.launch(blocks, kBlock, 0, [&](gpu::BlockContext& ctx) {
    ctx.for_each_thread([&](unsigned tid) {
      const std::size_t r =
          static_cast<std::size_t>(ctx.block_idx()) * kBlock + tid;
      if (r >= job.count) return;
      const unsigned len = batch.lengths[r];
      const std::uint8_t* codes = batch.codes.data() + r * stride;
      Key128* prefix_row = d_prefix.data() + r * stride;
      Key128* suffix_row = d_suffix.data() + r * stride;

      std::uint64_t ha = 0;
      std::uint64_t hb = 0;
      for (unsigned i = 0; i < len; ++i) {
        ha = addmod(mulmod(ha, job.primary.radix, job.primary.modulus),
                    codes[i] % job.primary.modulus, job.primary.modulus);
        hb = addmod(mulmod(hb, job.secondary.radix, job.secondary.modulus),
                    codes[i] % job.secondary.modulus, job.secondary.modulus);
        prefix_row[i] = Key128{ha, hb};
      }
      std::uint64_t sa = 0;
      std::uint64_t sb = 0;
      for (unsigned i = len; i-- > 0;) {
        sa = addmod(mulmod(codes[i] % job.primary.modulus,
                           job.pow_primary[len - 1 - i],
                           job.primary.modulus),
                    sa, job.primary.modulus);
        sb = addmod(mulmod(codes[i] % job.secondary.modulus,
                           job.pow_secondary[len - 1 - i],
                           job.secondary.modulus),
                    sb, job.secondary.modulus);
        suffix_row[i] = Key128{sa, sb};
      }
    });
  });

  // Cost model: every access is strided by the read length, so transactions
  // are uncoalesced -- charge the 8x transaction-expansion penalty that the
  // paper's "excessive memory throttling" observation corresponds to.
  constexpr std::uint64_t kUncoalescedPenalty = 8;
  dev.charge_kernel(
      kUncoalescedPenalty * total * (1 + 2 * sizeof(Key128)),
      static_cast<std::uint64_t>(total) * 2 * 2);
  if (streams != nullptr) streams->end_kernel(*stream);

  download(dev, job, d_prefix, d_suffix);
}

class SimulatedBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const override { return "simulated"; }
  [[nodiscard]] bool available() const override { return true; }
  [[nodiscard]] bool uses_device() const override { return true; }

  void fingerprint(const FingerprintJob& job, DeviceContext* ctx) override {
    gpu::Device& dev = require_device(ctx);
    if (job.count == 0) return;
    if (ctx->streams == nullptr) {
      if (ctx->thread_per_read) {
        run_thread_per_read(dev, job, nullptr, nullptr);
      } else {
        run_block_per_read(dev, job, nullptr, nullptr);
      }
      return;
    }
    // Double-buffered: batch i charges leg i % 2, so its transfers overlap
    // the neighbouring batch's kernel while kernels serialize via the
    // pair's event.
    gpu::Stream& s = ctx->streams->rotate();
    gpu::StreamScope scope(dev, s);
    if (ctx->thread_per_read) {
      run_thread_per_read(dev, job, ctx->streams, &s);
    } else {
      run_block_per_read(dev, job, ctx->streams, &s);
    }
  }

  void match_bounds(std::span<const Key128> needles,
                    std::span<const Key128> haystack,
                    std::span<std::uint32_t> lower,
                    std::span<std::uint32_t> upper,
                    DeviceContext* ctx) override {
    gpu::Device& dev = require_device(ctx);
    if (lower.size() != needles.size() || upper.size() != needles.size()) {
      throw std::invalid_argument("match_bounds: output size mismatch");
    }
    if (needles.empty()) return;
    auto d_sfx = dev.alloc<Key128>(needles.size());
    auto d_pfx = dev.alloc<Key128>(haystack.size());
    auto d_lower = dev.alloc<std::uint32_t>(needles.size());
    auto d_upper = dev.alloc<std::uint32_t>(needles.size());
    dev.copy_to_device(needles, d_sfx.span());
    dev.copy_to_device(haystack, d_pfx.span());
    gpu::vector_lower_bound(dev, d_sfx.span(), d_pfx.span(), d_lower.span());
    gpu::vector_upper_bound(dev, d_sfx.span(), d_pfx.span(), d_upper.span());
    dev.copy_to_host(std::span<const std::uint32_t>(d_lower.span()), lower);
    dev.copy_to_host(std::span<const std::uint32_t>(d_upper.span()), upper);
  }

  void sort_pairs(std::span<Key128> keys, std::span<std::uint64_t> values,
                  DeviceContext* ctx) override {
    gpu::Device& dev = require_device(ctx);
    if (keys.size() != values.size()) {
      throw std::invalid_argument("sort_pairs: key/value size mismatch");
    }
    if (keys.size() < 2) return;
    auto d_keys = dev.alloc<Key128>(keys.size());
    auto d_vals = dev.alloc<std::uint64_t>(values.size());
    dev.copy_to_device(std::span<const Key128>(keys), d_keys.span());
    dev.copy_to_device(std::span<const std::uint64_t>(values), d_vals.span());
    gpu::sort_pairs<std::uint64_t>(dev, d_keys.span(), d_vals.span());
    dev.copy_to_host(std::span<const Key128>(d_keys.span()), keys);
    dev.copy_to_host(std::span<const std::uint64_t>(d_vals.span()), values);
  }

 private:
  static gpu::Device& require_device(DeviceContext* ctx) {
    if (ctx == nullptr || ctx->device == nullptr) {
      throw std::invalid_argument(
          "simulated backend requires a DeviceContext with a device");
    }
    return *ctx->device;
  }
};

}  // namespace

Backend& simulated_backend() {
  static SimulatedBackend backend;
  return backend;
}

}  // namespace lasagna::kernel
