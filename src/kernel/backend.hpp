// Multi-backend harness for the pipeline's three hot inner kernels
// (UCLA-VAST/minimap2-acceleration pattern, see DESIGN.md):
//
//   1. fingerprint generation  — all prefix/suffix Rabin-Karp fingerprints
//                                of a batch of encoded reads,
//   2. match bounds            — batched lower/upper bound of suffix
//                                fingerprints in a sorted prefix window
//                                (Algorithm 2 lines 8-9),
//   3. radix sort              — stable LSD sort of (Key128, u64) pairs.
//
// A Backend is one implementation of all three over plain host memory: the
// simulated GPU (the modeled-clock reference the paper's numbers come
// from), a scalar host path, and an AVX2-vectorized host path. All
// backends produce byte-identical outputs — correctness is pinned by the
// dump/replay golden testbed (kernel/dump.hpp, kernel/replay.hpp) — so new
// backends (CUDA, HLS) drop in behind the same interface and are verified
// by byte-compare against captured pipeline workloads.
//
// Output canonical form: fingerprint outputs are row-major count x stride
// Key128 arrays; entries at [r][i] with i >= lengths[r] are ZERO (callers
// pre-zero the arrays, backends write only valid lanes). This makes every
// backend's output — and therefore every dump — directly byte-comparable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fingerprint/rabin_karp.hpp"
#include "gpu/key128.hpp"

namespace lasagna::gpu {
class Device;
class StreamPair;
}  // namespace lasagna::gpu

namespace lasagna::kernel {

/// The three kernels behind the harness (stable ids — part of the dump
/// format, never renumber).
enum class KernelId : std::uint32_t {
  kFingerprint = 1,
  kMatchBounds = 2,
  kSortPairs = 3,
};

[[nodiscard]] const char* kernel_name(KernelId id);

/// Device context for backends that execute on the simulated GPU: the
/// device to charge and (optionally) a stream pair for double-buffered
/// batches plus the block-per-read vs thread-per-read strategy choice.
/// Host backends ignore it.
struct DeviceContext {
  gpu::Device* device = nullptr;
  gpu::StreamPair* streams = nullptr;
  bool thread_per_read = false;
};

/// One fingerprint-generation workload: a batch of encoded reads
/// (row-major, fixed stride) plus the hash configuration and precomputed
/// place-value tables. Outputs are caller-allocated, ZEROED, count*stride
/// Key128 arrays (prefix[r*stride+i] = fingerprint of read r's prefix of
/// length i+1; suffix[r*stride+i] = fingerprint of the suffix starting at
/// i; hi = primary hash, lo = secondary).
struct FingerprintJob {
  unsigned count = 0;   ///< reads in the batch
  unsigned stride = 0;  ///< row stride = max read length in the batch
  std::span<const std::uint8_t> codes;     ///< count*stride base codes 0..3
  std::span<const std::uint16_t> lengths;  ///< count read lengths
  fingerprint::HashParams primary;
  fingerprint::HashParams secondary;
  std::span<const std::uint64_t> pow_primary;    ///< sigma_a^i mod q_a
  std::span<const std::uint64_t> pow_secondary;  ///< sigma_b^i mod q_b
  gpu::Key128* prefix = nullptr;  ///< out, count*stride, pre-zeroed
  gpu::Key128* suffix = nullptr;  ///< out, count*stride, pre-zeroed
};

/// One kernel-backend implementation. Methods are synchronous and
/// thread-compatible (no shared mutable state); the same Backend instance
/// may be used from several threads on disjoint data.
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Whether this backend can run on the current host (cpuid for the
  /// vector backends; always true for scalar and simulated).
  [[nodiscard]] virtual bool available() const = 0;

  /// True when the backend executes on the simulated device and charges
  /// its modeled clock (callers must then pass a DeviceContext).
  [[nodiscard]] virtual bool uses_device() const { return false; }

  virtual void fingerprint(const FingerprintJob& job,
                           DeviceContext* ctx) = 0;

  /// For each needle: lower[i] = index of the first haystack element >=
  /// needles[i], upper[i] = index of the first element > needles[i].
  /// `haystack` must be sorted ascending.
  virtual void match_bounds(std::span<const gpu::Key128> needles,
                            std::span<const gpu::Key128> haystack,
                            std::span<std::uint32_t> lower,
                            std::span<std::uint32_t> upper,
                            DeviceContext* ctx) = 0;

  /// Stable LSD radix sort of `keys` with `values` permuted alongside.
  virtual void sort_pairs(std::span<gpu::Key128> keys,
                          std::span<std::uint64_t> values,
                          DeviceContext* ctx) = 0;
};

// ---- registry --------------------------------------------------------------

/// The simulated-GPU reference backend (always available).
[[nodiscard]] Backend& simulated_backend();

/// The scalar host backend (always available).
[[nodiscard]] Backend& scalar_backend();

/// The AVX2 host backend. Always constructible; available() is false when
/// the build disabled vector codegen (LASAGNA_AVX2=OFF) or the running CPU
/// lacks AVX2 — callers must check before dispatching to it.
[[nodiscard]] Backend& avx2_backend();

/// Every registered backend, in registry order (simulated, scalar, avx2).
[[nodiscard]] std::vector<Backend*> all_backends();

/// Exact-name lookup ("simulated", "scalar", "avx2"); nullptr if unknown.
/// Returns unavailable backends too — replay tools decide how to skip.
[[nodiscard]] Backend* find_backend(std::string_view name);

/// Resolve a user-facing backend selection and log one line describing the
/// choice. "" and "simulated" pick the simulated device; "host" and "auto"
/// pick the fastest available host backend (avx2 if the CPU supports it,
/// else scalar); "avx2" falls back to scalar with a logged warning when
/// AVX2 is unavailable. Throws std::invalid_argument on unknown names.
[[nodiscard]] Backend& resolve_backend(std::string_view name);

/// The process-wide backend the pipeline dispatch sites use (defaults to
/// the simulated device). Install with ScopedBackend.
[[nodiscard]] Backend& active_backend();

/// RAII install of the active backend (restores the previous selection).
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend& backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend* previous_;
};

}  // namespace lasagna::kernel
