#include <stdexcept>
#include <string>

#include "kernel/backend.hpp"
#include "kernel/cpu_features.hpp"
#include "util/logging.hpp"

namespace lasagna::kernel {

namespace {

Backend* g_active = nullptr;

}  // namespace

const char* kernel_name(KernelId id) {
  switch (id) {
    case KernelId::kFingerprint:
      return "fingerprint";
    case KernelId::kMatchBounds:
      return "match_bounds";
    case KernelId::kSortPairs:
      return "sort_pairs";
  }
  return "unknown";
}

std::vector<Backend*> all_backends() {
  return {&simulated_backend(), &scalar_backend(), &avx2_backend()};
}

Backend* find_backend(std::string_view name) {
  for (Backend* b : all_backends()) {
    if (b->name() == name) return b;
  }
  return nullptr;
}

Backend& resolve_backend(std::string_view name) {
  const CpuFeatures& cpu = cpu_features();
  auto pick_host = [&]() -> Backend& {
    return avx2_backend().available() ? avx2_backend() : scalar_backend();
  };

  Backend* chosen = nullptr;
  if (name.empty() || name == "simulated") {
    chosen = &simulated_backend();
  } else if (name == "host" || name == "auto") {
    chosen = &pick_host();
  } else if (name == "avx2") {
    if (avx2_backend().available()) {
      chosen = &avx2_backend();
    } else {
      LOG_WARN << "kernel backend 'avx2' unavailable ("
               << (cpu.avx2 ? "vector codegen disabled at build time"
                            : "cpu lacks avx2")
               << "); falling back to scalar";
      chosen = &scalar_backend();
    }
  } else if (name == "scalar") {
    chosen = &scalar_backend();
  } else {
    throw std::invalid_argument("unknown kernel backend: " +
                                std::string(name));
  }
  LOG_INFO << "kernel backend: " << chosen->name()
           << (chosen->uses_device() ? " (simulated device)" : " (host)")
           << ", cpu avx2=" << (cpu.avx2 ? 1 : 0)
           << " bmi2=" << (cpu.bmi2 ? 1 : 0);
  return *chosen;
}

Backend& active_backend() {
  if (g_active == nullptr) g_active = &simulated_backend();
  return *g_active;
}

ScopedBackend::ScopedBackend(Backend& backend) : previous_(&active_backend()) {
  g_active = &backend;
}

ScopedBackend::~ScopedBackend() { g_active = previous_; }

}  // namespace lasagna::kernel
