#include "core/spec_resolve.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace lasagna::core {

SpeculativeResolver::SpeculativeResolver(std::uint32_t read_count,
                                         unsigned domain_count)
    : graph_(read_count), domains_(domain_count == 0 ? 1 : domain_count) {
  is_dirty_.assign(domains_.size(), 0);
}

void SpeculativeResolver::add_candidate(unsigned domain, graph::VertexId u,
                                        graph::VertexId v, std::uint16_t length,
                                        std::uint64_t rank) {
  if (domain >= domains_.size()) {
    throw std::out_of_range("spec_resolve: bad domain");
  }
  Domain& d = domains_[domain];
  if (!d.live.empty() && d.live.back().rank >= rank) {
    throw std::logic_error("spec_resolve: candidate ranks not ascending");
  }
  // New candidates force a re-speculation of the domain, so any proposals
  // parked at the master for it would be re-proposed — discard them (their
  // live indices are also about to shift under compaction).
  if (!retained_.empty()) {
    std::erase_if(retained_, [domain](const Pending& pending) {
      return pending.domain == domain;
    });
  }
  d.live.push_back(Candidate{u, v, length, rank});
  mark_dirty(domain);
  done_ = false;
}

void SpeculativeResolver::mark_dirty(unsigned domain) {
  if (!is_dirty_[domain]) {
    is_dirty_[domain] = 1;
    dirty_.push_back(domain);
  }
}

std::vector<SpeculativeResolver::Proposal> SpeculativeResolver::speculate(
    unsigned domain, std::uint64_t* rescanned) {
  Domain& d = domains_[domain];
  d.proposed.clear();
  std::vector<Proposal> out;

  // Local greedy: committed bits plus a speculative overlay of this
  // domain's own tentative acceptances. A candidate blocked by a
  // *committed* bit is dead for good (commits are never revoked) and is
  // dropped from the live list; one blocked only by a local speculative
  // acceptance stays live — if that acceptance dies in reconciliation the
  // next rescan may resurrect it.
  std::unordered_set<graph::VertexId> spec_bits;
  auto spec_blocked = [&](graph::VertexId bit) {
    return spec_bits.count(bit) != 0;
  };

  std::size_t kept = 0;
  std::uint64_t scanned = 0;
  for (std::size_t i = 0; i < d.live.size(); ++i) {
    const Candidate& c = d.live[i];
    ++scanned;
    // Self-overlap pairs can never be accepted: permanently dead.
    if (c.v == c.u || c.v == (c.u ^ 1u)) continue;
    const graph::VertexId bu = c.u;
    const graph::VertexId bv = c.v ^ 1u;
    if (graph_.has_out_edge(bu) || graph_.has_out_edge(bv)) continue;  // dead
    d.live[kept] = c;
    if (!spec_blocked(bu) && !spec_blocked(bv)) {
      spec_bits.insert(bu);
      spec_bits.insert(bv);
      d.proposed.push_back(kept);
      out.push_back(Proposal{c.u, c.v, c.length, 0, c.rank});
    }
    ++kept;
  }
  d.live.resize(kept);
  if (rescanned != nullptr) *rescanned = scanned;
  return out;
}

SpeculativeResolver::RoundReport SpeculativeResolver::reconcile(
    const std::vector<std::vector<Proposal>>& per_domain) {
  if (per_domain.size() != dirty_.size()) {
    throw std::logic_error("spec_resolve: proposal set / dirty set mismatch");
  }
  RoundReport report;
  report.round = ++round_;

  // Merge the retained proposals from earlier rounds with the dirty
  // domains' fresh rank-ascending streams into one global rank-ascending
  // stream, resolving each proposal to its owner's live entry up front
  // (fresh entries via the speculate() cursor, retained entries carry
  // theirs — stable because their owner stayed clean).
  std::vector<Pending> merged;
  merged.reserve(retained_.size() + per_domain.size());
  for (const Pending& pending : retained_) {
    merged.push_back(pending);
  }
  for (unsigned slot = 0; slot < per_domain.size(); ++slot) {
    const unsigned domain = dirty_[slot];
    const Domain& d = domains_[domain];
    assert(per_domain[slot].size() == d.proposed.size());
    for (std::size_t i = 0; i < per_domain[slot].size(); ++i) {
      const std::size_t live_idx = d.proposed[i];
      assert(d.live[live_idx].rank == per_domain[slot][i].rank);
      merged.push_back(Pending{per_domain[slot][i], domain, live_idx});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Pending& a, const Pending& b) {
    return a.p.rank < b.p.rank;
  });
  report.proposals = merged.size();

  // Death / defer-after-first-death / commit, in rank order. The first
  // death may resurrect a hidden lower-rank candidate in the dead
  // proposal's domain, and that candidate could block any later proposal
  // — so everything after the first death is deferred to the next round.
  std::vector<char> next_dirty(domains_.size(), 0);
  std::vector<Pending> deferred;
  bool death_seen = false;
  for (const Pending& t : merged) {
    Domain& d = domains_[t.domain];
    const graph::VertexId bu = t.p.u;
    const graph::VertexId bv = t.p.v ^ 1u;
    if (graph_.has_out_edge(bu) || graph_.has_out_edge(bv)) {
      // Conflict with a commit from another domain: this candidate is
      // permanently blocked. Mark it dead in place; the owner's next
      // speculate() compacts it away.
      d.live[t.live_idx].v = d.live[t.live_idx].u;  // self-pair == dead
      ++report.conflicts;
      next_dirty[t.domain] = 1;
      death_seen = true;
      continue;
    }
    if (death_seen) {
      ++report.deferred;
      deferred.push_back(t);
      continue;
    }
    const bool ok = graph_.try_add_edge(t.p.u, t.p.v, t.p.length);
    assert(ok);
    (void)ok;
    report.delta.push_back(graph::Edge{t.p.u, t.p.v, t.p.length});
    d.live[t.live_idx].v = d.live[t.live_idx].u;  // committed: drop on scan
    ++report.committed;
  }

  // A deferred proposal whose owner stayed clean is retained here — the
  // owner's local state is unchanged, so a replay would reproduce it
  // verbatim; keeping it saves the rescan and the resend. One whose owner
  // died this round is discarded: the owner's replay re-derives its
  // proposal set from scratch.
  retained_.clear();
  for (const Pending& t : deferred) {
    if (!next_dirty[t.domain]) {
      retained_.push_back(t);
    }
  }
  report.retained = retained_.size();

  dirty_.clear();
  for (unsigned dom = 0; dom < domains_.size(); ++dom) {
    is_dirty_[dom] = next_dirty[dom];
    if (next_dirty[dom]) dirty_.push_back(dom);
  }
  report.done = dirty_.empty();
  assert(!report.done || retained_.empty());
  done_ = report.done;
  return report;
}

std::vector<SpeculativeResolver::RoundReport>
SpeculativeResolver::run_to_fixpoint() {
  std::vector<RoundReport> reports;
  while (!done_) {
    const std::vector<unsigned> dirty = dirty_;  // reconcile edits dirty_
    if (dirty.empty()) {
      done_ = true;
      break;
    }
    std::vector<std::vector<Proposal>> proposals;
    proposals.reserve(dirty.size());
    std::uint64_t rescanned = 0;
    for (const unsigned domain : dirty) {
      std::uint64_t scanned = 0;
      proposals.push_back(speculate(domain, &scanned));
      rescanned += scanned;
    }
    RoundReport report = reconcile(proposals);
    report.rescanned = rescanned;
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace lasagna::core
