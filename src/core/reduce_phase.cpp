#include "core/reduce_phase.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "core/file_window.hpp"
#include "gpu/primitives.hpp"
#include "gpu/stream.hpp"
#include "kernel/backend.hpp"
#include "kernel/dump.hpp"
#include "io/async_record_stream.hpp"
#include "io/record_stream.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "seq/dna.hpp"
#include "util/logging.hpp"

namespace lasagna::core {

namespace {

/// True when the suffix string of `u` (length l) equals the prefix string
/// of `v` (length l) — used in verify mode to count false positives.
bool overlap_is_real(const seq::PackedReads& reads, graph::VertexId u,
                     graph::VertexId v, unsigned l) {
  const std::string su = graph::is_reverse(u)
                             ? reads.decode_rc(graph::read_of(u))
                             : reads.decode(graph::read_of(u));
  const std::string sv = graph::is_reverse(v)
                             ? reads.decode_rc(graph::read_of(v))
                             : reads.decode(graph::read_of(v));
  if (su.size() < l || sv.size() < l) return false;
  return std::equal(su.end() - l, su.end(), sv.begin());
}

/// Candidate matches of one equalized window pair, copied out of the live
/// windows so host insertion can run one window behind the device (the
/// window buffers recycle on the next fill()).
struct PendingMatches {
  std::vector<graph::VertexId> sfx_vertices;
  std::vector<graph::VertexId> pfx_vertices;
  std::vector<gpu::Key128> sfx_fps;  ///< matching fingerprint per suffix row
  std::vector<std::uint32_t> lower;
  std::vector<std::uint32_t> upper;
  bool valid = false;
};

/// Per-partition match state. The four device buffers and the host staging
/// vectors are sized to the window once and reused for every window of the
/// partition (previously: four device allocations plus two key-copy loops
/// per window). match() computes window i's bounds on a rotated stream leg
/// and then inserts window i-1's queued edges — the host greedy update the
/// paper keeps off the GPU (III-C) runs in the shadow of the device
/// kernels, and the modeled clock charges max(device, disk, host) for the
/// phase instead of their sum.
class WindowMatcher {
 public:
  WindowMatcher(Workspace& ws, unsigned length, std::size_t window,
                const ReduceOptions& options, graph::StringGraph& graph,
                PartitionReduceStats& stats)
      : ws_(ws),
        length_(length),
        options_(options),
        graph_(graph),
        stats_(stats),
        streams_(*ws.device, options.streamed),
        d_sfx_(ws.device->alloc<gpu::Key128>(window)),
        d_pfx_(ws.device->alloc<gpu::Key128>(window)),
        d_lower_(ws.device->alloc<std::uint32_t>(window)),
        d_upper_(ws.device->alloc<std::uint32_t>(window)) {}

  /// Match one pair of equalized windows: device lower/upper bounds for
  /// window i, then host insertion of window i-1's deferred edges.
  /// Insertion order across windows is exactly the synchronous order —
  /// every window's edges are inserted before any later window's.
  void match(std::span<const FpRecord> sfx, std::span<const FpRecord> pfx) {
    if (sfx.empty() || pfx.empty()) return;
    gpu::Device& dev = *ws_.device;

    sfx_keys_.resize(sfx.size());
    pfx_keys_.resize(pfx.size());
    for (std::size_t i = 0; i < sfx.size(); ++i) sfx_keys_[i] = sfx[i].fp;
    for (std::size_t i = 0; i < pfx.size(); ++i) pfx_keys_[i] = pfx[i].fp;

    staged_.lower.resize(sfx.size());
    staged_.upper.resize(sfx.size());

    static obs::Histogram& wall_ns =
        obs::MetricsRegistry::global().histogram("kernel.match_bounds.wall_ns");
    const auto t0 = std::chrono::steady_clock::now();
    kernel::Backend& backend = kernel::active_backend();
    if (!backend.uses_device()) {
      // Host backend (scalar/avx2): the bound searches run directly on the
      // staged host keys; the device and its modeled clock stay idle.
      backend.match_bounds(sfx_keys_, pfx_keys_, staged_.lower,
                           staged_.upper, nullptr);
    } else {
      const auto d_sfx = d_sfx_.span().first(sfx.size());
      const auto d_pfx = d_pfx_.span().first(pfx.size());
      const auto d_lower = d_lower_.span().first(sfx.size());
      const auto d_upper = d_upper_.span().first(sfx.size());

      gpu::Stream& s = streams_.rotate();
      s.copy_to_device_async(std::span<const gpu::Key128>(sfx_keys_), d_sfx);
      s.copy_to_device_async(std::span<const gpu::Key128>(pfx_keys_), d_pfx);
      streams_.begin_kernel(s);  // one compute engine: kernels serialize
      {
        gpu::StreamScope scope(dev, s);
        gpu::vector_lower_bound(dev, d_sfx, d_pfx, d_lower);
        gpu::vector_upper_bound(dev, d_sfx, d_pfx, d_upper);
      }
      streams_.end_kernel(s);

      s.copy_to_host_async(std::span<const std::uint32_t>(d_lower),
                           std::span<std::uint32_t>(staged_.lower));
      s.copy_to_host_async(std::span<const std::uint32_t>(d_upper),
                           std::span<std::uint32_t>(staged_.upper));
    }
    wall_ns.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count());

    if (kernel::CaptureSession* capture = kernel::CaptureSession::active()) {
      // The simulated copies above are async only on the modeled clock;
      // the staged data is final here on either path.
      capture->record(
          kernel::KernelId::kMatchBounds,
          {sfx.size(), pfx.size(), 0, 0, 0, 0, 0, 0},
          kernel::concat_bytes(
              {std::as_bytes(std::span<const gpu::Key128>(sfx_keys_)),
               std::as_bytes(std::span<const gpu::Key128>(pfx_keys_))}),
          kernel::concat_bytes(
              {std::as_bytes(std::span<const std::uint32_t>(staged_.lower)),
               std::as_bytes(
                   std::span<const std::uint32_t>(staged_.upper))}));
    }
    staged_.sfx_vertices.resize(sfx.size());
    staged_.pfx_vertices.resize(pfx.size());
    staged_.sfx_fps.assign(sfx_keys_.begin(), sfx_keys_.end());
    for (std::size_t i = 0; i < sfx.size(); ++i) {
      staged_.sfx_vertices[i] = sfx[i].vertex;
    }
    for (std::size_t j = 0; j < pfx.size(); ++j) {
      staged_.pfx_vertices[j] = pfx[j].vertex;
    }
    staged_.valid = true;

    flush();                          // insert window i-1 behind the device
    std::swap(pending_, staged_);     // window i becomes the deferred one
  }

  /// All-pairs match of an oversized duplicate-fingerprint run (window
  /// overflow fallback). Deferred edges are drained first so insertion
  /// order matches the synchronous path. The run is one equal-fingerprint
  /// group, so its offers go out in the canonical total order.
  void match_run(const std::vector<FpRecord>& run_sfx,
                 const std::vector<FpRecord>& run_pfx) {
    flush();
    if (run_sfx.empty() || run_pfx.empty()) return;
    group_sfx_.clear();
    group_pfx_.clear();
    for (const FpRecord& s : run_sfx) group_sfx_.push_back(s.vertex);
    for (const FpRecord& p : run_pfx) group_pfx_.push_back(p.vertex);
    offer_group(run_sfx.front().fp);
  }

  /// Insert the deferred window's edges (host greedy update, paper III-C).
  ///
  /// Offers follow a *canonical total order* that is independent of the
  /// record layout: the window equalization guarantees each equal-
  /// fingerprint run is complete on both sides within one match() (or
  /// match_run()) call, so grouping rows by fingerprint here sees every
  /// tied candidate of a group at once. Groups go out in ascending
  /// fingerprint order (layout-invariant — it is the sort key); within a
  /// group, suffix and prefix vertices are each sorted ascending and
  /// offered as nested pairs. Sort-run boundaries, bucket layouts and
  /// window geometry can permute equal-fingerprint records in the sorted
  /// files, but they can no longer permute the offer order — the greedy
  /// edge set is the same on every layout (DESIGN.md section 5).
  void flush() {
    if (!pending_.valid) return;
    obs::WallSpan span;
    if (obs::Tracer* tracer = obs::Tracer::active()) {
      span = obs::WallSpan(
          *tracer, tracer->track("host.insert"),
          "insert:l" + std::to_string(length_),
          {{"rows", static_cast<std::int64_t>(pending_.sfx_vertices.size())}});
    }
    const std::size_t rows = pending_.sfx_vertices.size();
    std::size_t i = 0;
    while (i < rows) {
      std::size_t end = i + 1;
      while (end < rows && pending_.sfx_fps[end] == pending_.sfx_fps[i]) {
        ++end;
      }
      // Equal suffix fingerprints share one [lower, upper) prefix range.
      const std::uint32_t lo = pending_.lower[i];
      const std::uint32_t hi = pending_.upper[i];
      if (lo != hi) {
        group_sfx_.clear();
        group_pfx_.clear();
        for (std::size_t k = i; k < end; ++k) {
          group_sfx_.push_back(pending_.sfx_vertices[k]);
        }
        for (std::uint32_t j = lo; j < hi; ++j) {
          group_pfx_.push_back(pending_.pfx_vertices[j]);
        }
        offer_group(pending_.sfx_fps[i]);
      }
      i = end;
    }
    pending_.valid = false;
  }

 private:
  /// Offer one equal-fingerprint group's pairs in canonical order.
  void offer_group(const gpu::Key128& fp) {
    std::sort(group_sfx_.begin(), group_sfx_.end());
    std::sort(group_pfx_.begin(), group_pfx_.end());
    for (const graph::VertexId u : group_sfx_) {
      for (const graph::VertexId v : group_pfx_) {
        offer(u, v, fp);
      }
    }
  }

  void offer(graph::VertexId u, graph::VertexId v, const gpu::Key128& fp) {
    ++stats_.candidates;
    if (options_.verify_overlaps && options_.reads != nullptr &&
        !overlap_is_real(*options_.reads, u, v, length_)) {
      ++stats_.false_positives;
      return;
    }
    if (options_.candidate_sink) {
      options_.candidate_sink(u, v, static_cast<std::uint16_t>(length_), fp);
    } else if (graph_.try_add_edge(u, v,
                                   static_cast<std::uint16_t>(length_))) {
      ++stats_.accepted;
    }
  }

  Workspace& ws_;
  unsigned length_;
  const ReduceOptions& options_;
  graph::StringGraph& graph_;
  PartitionReduceStats& stats_;
  gpu::StreamPair streams_;
  gpu::DeviceBuffer<gpu::Key128> d_sfx_;
  gpu::DeviceBuffer<gpu::Key128> d_pfx_;
  gpu::DeviceBuffer<std::uint32_t> d_lower_;
  gpu::DeviceBuffer<std::uint32_t> d_upper_;
  std::vector<gpu::Key128> sfx_keys_;
  std::vector<gpu::Key128> pfx_keys_;
  std::vector<graph::VertexId> group_sfx_;  ///< tie group, canonical order
  std::vector<graph::VertexId> group_pfx_;
  PendingMatches pending_;  ///< window i-1, awaiting insertion
  PendingMatches staged_;   ///< window i, just bounded on the device
};

/// Core of Algorithm 2, generic over the record reader so the streamed path
/// substitutes the prefetching io::AsyncRecordReader — both deliver the
/// exact same record sequence, so the edge set is identical.
template <class Reader>
PartitionReduceStats reduce_partition_impl(Workspace& ws,
                                           const SortedPartition& partition,
                                           graph::StringGraph& graph,
                                           const ReduceOptions& options) {
  PartitionReduceStats stats;
  gpu::Device& dev = *ws.device;

  // Windows sized so suffix + prefix keys plus both bound arrays fit the
  // device alongside transfer staging.
  const std::size_t window = std::max<std::size_t>(
      16, dev.memory().capacity() / (8 * sizeof(FpRecord)));
  obs::MetricsRegistry::global()
      .histogram("core.reduce.window_records")
      .record(static_cast<std::int64_t>(window));
  util::TrackedAllocation window_mem(*ws.host,
                                     2 * window * sizeof(FpRecord));

  FileWindow<Reader> sfx(window, partition.suffix_file, *ws.io);
  FileWindow<Reader> pfx(window, partition.prefix_file, *ws.io);
  WindowMatcher matcher(ws, partition.length, window, options, graph, stats);
  std::vector<FpRecord> run_sfx;
  std::vector<FpRecord> run_pfx;

  while (true) {
    const bool has_s = sfx.fill();
    const bool has_p = pfx.fill();
    if (!has_s || !has_p) break;  // no further matches possible

    std::span<const FpRecord> vs = sfx.view();
    std::span<const FpRecord> vp = pfx.view();

    // Equalize both windows to the same fingerprint range (Algorithm 2
    // lines 5-7). The boundary fingerprint f = min of last keys may
    // continue beyond a window; its run may only be matched once it is
    // complete on BOTH sides (a side's run is complete if its stream is
    // drained or its window extends past f), otherwise both sides defer
    // the run to the next iteration.
    const gpu::Key128 f = std::min(vs.back().fp, vp.back().fp);
    const bool s_complete = sfx.stream_done() || vs.back().fp != f;
    const bool p_complete = pfx.stream_done() || vp.back().fp != f;
    const bool include_f = s_complete && p_complete;
    auto cut = [&f, include_f](std::span<const FpRecord> w) {
      const FpRecord probe{f, 0, 0};
      return static_cast<std::size_t>(
          (include_f
               ? std::upper_bound(w.begin(), w.end(), probe, fp_less)
               : std::lower_bound(w.begin(), w.end(), probe, fp_less)) -
          w.begin());
    };
    const std::size_t cut_s = cut(vs);
    const std::size_t cut_p = cut(vp);

    if (cut_s == 0 && cut_p == 0) {
      // Both windows start inside the same oversized fingerprint run. All
      // records in the run share fingerprint f, so every (suffix, prefix)
      // pair is a candidate — no device bounds needed; drain the run from
      // both sides in host memory and match all pairs directly.
      run_sfx.clear();
      run_pfx.clear();
      sfx.append_run(f, run_sfx);
      pfx.append_run(f, run_pfx);
      matcher.match_run(run_sfx, run_pfx);
      continue;
    }

    matcher.match(vs.first(cut_s), vp.first(cut_p));
    sfx.consume(cut_s);
    pfx.consume(cut_p);
  }
  matcher.flush();
  // Host insertion stage: each candidate pair is one greedy-graph probe.
  stats.host_bytes = stats.candidates * sizeof(graph::Edge);
  return stats;
}

}  // namespace

PartitionReduceStats reduce_partition(Workspace& ws,
                                      const SortedPartition& partition,
                                      graph::StringGraph& graph,
                                      const ReduceOptions& options) {
  obs::WallSpan span;
  if (obs::Tracer* tracer = obs::Tracer::active()) {
    span = obs::WallSpan(
        *tracer, tracer->track("core.reduce"),
        "partition:l" + std::to_string(partition.length),
        {{"length", static_cast<std::int64_t>(partition.length)}});
  }
  return options.streamed
             ? reduce_partition_impl<io::AsyncRecordReader<FpRecord>>(
                   ws, partition, graph, options)
             : reduce_partition_impl<io::RecordReader<FpRecord>>(
                   ws, partition, graph, options);
}

ReduceResult run_reduce_phase(Workspace& ws, const SortResult& sorted,
                              std::uint32_t read_count,
                              const ReduceOptions& options) {
  ReduceResult result;
  result.graph = std::make_unique<graph::StringGraph>(read_count);
  util::TrackedAllocation graph_mem(*ws.host,
                                    result.graph->memory_bytes());

  // Descending length order: the greedy heuristic must see the longest
  // overlaps first (paper III-C / III-E3).
  for (auto it = sorted.partitions.rbegin(); it != sorted.partitions.rend();
       ++it) {
    const PartitionReduceStats stats =
        reduce_partition(ws, *it, *result.graph, options);
    result.candidate_edges += stats.candidates;
    result.accepted_edges += stats.accepted;
    result.false_positives += stats.false_positives;
    result.host_bytes += stats.host_bytes;
  }
  LOG_INFO << "reduce: " << result.candidate_edges << " candidates, "
           << result.accepted_edges << " accepted, "
           << result.false_positives << " false positives";
  return result;
}

}  // namespace lasagna::core
