#include "core/reduce_phase.hpp"

#include <algorithm>
#include <vector>

#include "gpu/primitives.hpp"
#include "io/record_stream.hpp"
#include "seq/dna.hpp"
#include "util/logging.hpp"

namespace lasagna::core {

namespace {

/// Streaming window with carry-over (same shape as the sort phase's
/// FileWindow, duplicated locally to keep the phases self-contained).
class StreamWindow {
 public:
  StreamWindow(const std::filesystem::path& path, std::size_t window_records,
               io::IoStats& stats)
      : reader_(path, stats), window_(window_records) {}

  bool fill() {
    if (buffer_.size() < window_ && !reader_.eof()) {
      reader_.read(buffer_, window_ - buffer_.size());
    }
    return !buffer_.empty();
  }

  [[nodiscard]] std::span<const FpRecord> view() const { return buffer_; }
  void consume(std::size_t n) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  [[nodiscard]] bool stream_done() const { return reader_.eof(); }

  /// Pull records while their fingerprint equals `fp` (window-overflow
  /// fallback for pathological duplicate runs).
  void append_run(const gpu::Key128& fp, std::vector<FpRecord>& out) {
    for (;;) {
      while (!buffer_.empty() && buffer_.front().fp == fp) {
        out.push_back(buffer_.front());
        buffer_.erase(buffer_.begin());
      }
      if (!buffer_.empty() || reader_.eof()) return;
      reader_.read(buffer_, window_);
      if (buffer_.empty()) return;
    }
  }

 private:
  io::RecordReader<FpRecord> reader_;
  std::size_t window_;
  std::vector<FpRecord> buffer_;
};

/// True when the suffix string of `u` (length l) equals the prefix string
/// of `v` (length l) — used in verify mode to count false positives.
bool overlap_is_real(const seq::PackedReads& reads, graph::VertexId u,
                     graph::VertexId v, unsigned l) {
  const std::string su = graph::is_reverse(u)
                             ? reads.decode_rc(graph::read_of(u))
                             : reads.decode(graph::read_of(u));
  const std::string sv = graph::is_reverse(v)
                             ? reads.decode_rc(graph::read_of(v))
                             : reads.decode(graph::read_of(v));
  if (su.size() < l || sv.size() < l) return false;
  return std::equal(su.end() - l, su.end(), sv.begin());
}

/// Match one pair of equalized windows on the device and emit greedy edges.
void match_windows(Workspace& ws, std::span<const FpRecord> sfx,
                   std::span<const FpRecord> pfx, unsigned length,
                   graph::StringGraph& graph, const ReduceOptions& options,
                   PartitionReduceStats& stats) {
  if (sfx.empty() || pfx.empty()) return;
  gpu::Device& dev = *ws.device;

  std::vector<gpu::Key128> sfx_keys(sfx.size());
  std::vector<gpu::Key128> pfx_keys(pfx.size());
  for (std::size_t i = 0; i < sfx.size(); ++i) sfx_keys[i] = sfx[i].fp;
  for (std::size_t i = 0; i < pfx.size(); ++i) pfx_keys[i] = pfx[i].fp;

  auto d_sfx = dev.alloc<gpu::Key128>(sfx.size());
  auto d_pfx = dev.alloc<gpu::Key128>(pfx.size());
  auto d_lower = dev.alloc<std::uint32_t>(sfx.size());
  auto d_upper = dev.alloc<std::uint32_t>(sfx.size());
  dev.copy_to_device(std::span<const gpu::Key128>(sfx_keys), d_sfx.span());
  dev.copy_to_device(std::span<const gpu::Key128>(pfx_keys), d_pfx.span());

  gpu::vector_lower_bound(dev, d_sfx.span(), d_pfx.span(), d_lower.span());
  gpu::vector_upper_bound(dev, d_sfx.span(), d_pfx.span(), d_upper.span());

  std::vector<std::uint32_t> lower(sfx.size());
  std::vector<std::uint32_t> upper(sfx.size());
  dev.copy_to_host(std::span<const std::uint32_t>(d_lower.span()),
                   std::span<std::uint32_t>(lower));
  dev.copy_to_host(std::span<const std::uint32_t>(d_upper.span()),
                   std::span<std::uint32_t>(upper));

  // Host-side greedy graph update (paper III-C: the graph lives in host
  // memory; GPU atomics for edge insertion were found detrimental).
  for (std::size_t i = 0; i < sfx.size(); ++i) {
    const std::uint32_t count = upper[i] - lower[i];
    if (count == 0) continue;
    const graph::VertexId u = sfx[i].vertex;
    for (std::uint32_t j = lower[i]; j < upper[i]; ++j) {
      const graph::VertexId v = pfx[j].vertex;
      ++stats.candidates;
      if (options.verify_overlaps && options.reads != nullptr &&
          !overlap_is_real(*options.reads, u, v, length)) {
        ++stats.false_positives;
        continue;
      }
      if (options.candidate_sink) {
        options.candidate_sink(u, v);
      } else if (graph.try_add_edge(u, v,
                                    static_cast<std::uint16_t>(length))) {
        ++stats.accepted;
      }
    }
  }
}

}  // namespace

PartitionReduceStats reduce_partition(Workspace& ws,
                                      const SortedPartition& partition,
                                      graph::StringGraph& graph,
                                      const ReduceOptions& options) {
  PartitionReduceStats stats;
  gpu::Device& dev = *ws.device;

  // Windows sized so suffix + prefix keys plus both bound arrays fit the
  // device alongside transfer staging.
  const std::size_t window = std::max<std::size_t>(
      16, dev.memory().capacity() / (8 * sizeof(FpRecord)));
  util::TrackedAllocation window_mem(*ws.host,
                                     2 * window * sizeof(FpRecord));

  StreamWindow sfx(partition.suffix_file, window, *ws.io);
  StreamWindow pfx(partition.prefix_file, window, *ws.io);
  std::vector<FpRecord> run_sfx;
  std::vector<FpRecord> run_pfx;

  while (true) {
    const bool has_s = sfx.fill();
    const bool has_p = pfx.fill();
    if (!has_s || !has_p) break;  // no further matches possible

    std::span<const FpRecord> vs = sfx.view();
    std::span<const FpRecord> vp = pfx.view();

    // Equalize both windows to the same fingerprint range (Algorithm 2
    // lines 5-7). The boundary fingerprint f = min of last keys may
    // continue beyond a window; its run may only be matched once it is
    // complete on BOTH sides (a side's run is complete if its stream is
    // drained or its window extends past f), otherwise both sides defer
    // the run to the next iteration.
    const gpu::Key128 f = std::min(vs.back().fp, vp.back().fp);
    const bool s_complete = sfx.stream_done() || vs.back().fp != f;
    const bool p_complete = pfx.stream_done() || vp.back().fp != f;
    const bool include_f = s_complete && p_complete;
    auto cut = [&f, include_f](std::span<const FpRecord> w) {
      const FpRecord probe{f, 0, 0};
      return static_cast<std::size_t>(
          (include_f
               ? std::upper_bound(w.begin(), w.end(), probe, fp_less)
               : std::lower_bound(w.begin(), w.end(), probe, fp_less)) -
          w.begin());
    };
    const std::size_t cut_s = cut(vs);
    const std::size_t cut_p = cut(vp);

    if (cut_s == 0 && cut_p == 0) {
      // Both windows start inside the same oversized fingerprint run. All
      // records in the run share fingerprint f, so every (suffix, prefix)
      // pair is a candidate — no device bounds needed; drain the run from
      // both sides in host memory and match all pairs directly.
      run_sfx.clear();
      run_pfx.clear();
      sfx.append_run(f, run_sfx);
      pfx.append_run(f, run_pfx);
      for (const FpRecord& s : run_sfx) {
        for (const FpRecord& p : run_pfx) {
          ++stats.candidates;
          if (options.verify_overlaps && options.reads != nullptr &&
              !overlap_is_real(*options.reads, s.vertex, p.vertex,
                               partition.length)) {
            ++stats.false_positives;
            continue;
          }
          if (options.candidate_sink) {
            options.candidate_sink(s.vertex, p.vertex);
          } else if (graph.try_add_edge(s.vertex, p.vertex,
                                        static_cast<std::uint16_t>(
                                            partition.length))) {
            ++stats.accepted;
          }
        }
      }
      continue;
    }

    match_windows(ws, vs.first(cut_s), vp.first(cut_p), partition.length,
                  graph, options, stats);
    sfx.consume(cut_s);
    pfx.consume(cut_p);
  }
  return stats;
}

ReduceResult run_reduce_phase(Workspace& ws, const SortResult& sorted,
                              std::uint32_t read_count,
                              const ReduceOptions& options) {
  ReduceResult result;
  result.graph = std::make_unique<graph::StringGraph>(read_count);
  util::TrackedAllocation graph_mem(*ws.host,
                                    result.graph->memory_bytes());

  // Descending length order: the greedy heuristic must see the longest
  // overlaps first (paper III-C / III-E3).
  for (auto it = sorted.partitions.rbegin(); it != sorted.partitions.rend();
       ++it) {
    const PartitionReduceStats stats =
        reduce_partition(ws, *it, *result.graph, options);
    result.candidate_edges += stats.candidates;
    result.accepted_edges += stats.accepted;
    result.false_positives += stats.false_positives;
  }
  LOG_INFO << "reduce: " << result.candidate_edges << " candidates, "
           << result.accepted_edges << " accepted, "
           << result.false_positives << " false positives";
  return result;
}

}  // namespace lasagna::core
