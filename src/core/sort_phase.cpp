#include "core/sort_phase.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/file_window.hpp"
#include "gpu/primitives.hpp"
#include "gpu/stream.hpp"
#include "io/async_record_stream.hpp"
#include "kernel/backend.hpp"
#include "kernel/dump.hpp"
#include "io/record_stream.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace lasagna::core {

namespace {

/// Chunk i runs on modeled stream i % 2 (gpu::StreamPair); synchronous mode
/// aliases both legs to the default stream, keeping legacy modeled sums.
using DeviceStreams = gpu::StreamPair;

/// AoS -> SoA split for the device primitives.
void split_records(std::span<const FpRecord> records,
                   std::vector<gpu::Key128>& keys,
                   std::vector<std::uint64_t>& vals) {
  keys.resize(records.size());
  vals.resize(records.size());
  util::ThreadPool::global().parallel_for_chunked(
      records.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          keys[i] = records[i].fp;
          vals[i] = records[i].vertex;
        }
      });
}

void join_records(std::span<const gpu::Key128> keys,
                  std::span<const std::uint64_t> vals,
                  std::span<FpRecord> out) {
  util::ThreadPool::global().parallel_for_chunked(
      keys.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = FpRecord{keys[i], static_cast<std::uint32_t>(vals[i]), 0};
        }
      });
}

/// Device radix sort of one chunk (must fit m_d). The H2D/sort/D2H legs
/// charge the chunk's stream; alternating chunks across the two legs models
/// transfers hidden behind the neighbouring chunk's kernel.
void device_sort_chunk(Workspace& ws, std::span<FpRecord> chunk,
                       DeviceStreams& streams) {
  if (chunk.size() < 2) return;
  gpu::Device& dev = *ws.device;

  std::vector<gpu::Key128> keys;
  std::vector<std::uint64_t> vals;
  split_records(chunk, keys, vals);

  kernel::CaptureSession* capture = kernel::CaptureSession::active();
  std::vector<std::byte> capture_input;
  if (capture != nullptr) {
    capture_input = kernel::concat_bytes(
        {std::as_bytes(std::span<const gpu::Key128>(keys)),
         std::as_bytes(std::span<const std::uint64_t>(vals))});
  }

  static obs::Histogram& wall_ns =
      obs::MetricsRegistry::global().histogram("kernel.sort_pairs.wall_ns");
  const auto t0 = std::chrono::steady_clock::now();
  kernel::Backend& backend = kernel::active_backend();
  if (!backend.uses_device()) {
    // Host backend (scalar/avx2): sort in place on the host split; same
    // stable LSD permutation, so records land byte-identically.
    backend.sort_pairs(keys, vals, nullptr);
  } else {
    auto d_keys = dev.alloc<gpu::Key128>(chunk.size());
    auto d_vals = dev.alloc<std::uint64_t>(chunk.size());
    gpu::Stream& s = streams.rotate();
    s.copy_to_device_async(std::span<const gpu::Key128>(keys), d_keys.span());
    s.copy_to_device_async(std::span<const std::uint64_t>(vals),
                           d_vals.span());

    streams.begin_kernel(s);  // one compute engine: kernels serialize
    {
      gpu::StreamScope scope(dev, s);
      gpu::sort_pairs<std::uint64_t>(dev, d_keys.span(), d_vals.span());
    }
    streams.end_kernel(s);

    s.copy_to_host_async(std::span<const gpu::Key128>(d_keys.span()),
                         std::span<gpu::Key128>(keys));
    s.copy_to_host_async(std::span<const std::uint64_t>(d_vals.span()),
                         std::span<std::uint64_t>(vals));
  }
  wall_ns.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count());

  if (capture != nullptr) {
    capture->record(
        kernel::KernelId::kSortPairs, {chunk.size(), 0, 0, 0, 0, 0, 0, 0},
        capture_input,
        kernel::concat_bytes(
            {std::as_bytes(std::span<const gpu::Key128>(keys)),
             std::as_bytes(std::span<const std::uint64_t>(vals))}));
  }
  join_records(keys, vals, chunk);
}

/// Device merge of two host windows that both fit on the device together.
void device_merge_windows(Workspace& ws, std::span<const FpRecord> a,
                          std::span<const FpRecord> b,
                          std::vector<FpRecord>& out,
                          DeviceStreams& streams) {
  gpu::Device& dev = *ws.device;
  out.resize(a.size() + b.size());
  if (a.empty()) {
    std::copy(b.begin(), b.end(), out.begin());
    return;
  }
  if (b.empty()) {
    std::copy(a.begin(), a.end(), out.begin());
    return;
  }

  std::vector<gpu::Key128> keys_a;
  std::vector<std::uint64_t> vals_a;
  std::vector<gpu::Key128> keys_b;
  std::vector<std::uint64_t> vals_b;
  split_records(a, keys_a, vals_a);
  split_records(b, keys_b, vals_b);

  auto d_ka = dev.alloc<gpu::Key128>(a.size());
  auto d_va = dev.alloc<std::uint64_t>(a.size());
  auto d_kb = dev.alloc<gpu::Key128>(b.size());
  auto d_vb = dev.alloc<std::uint64_t>(b.size());
  auto d_ko = dev.alloc<gpu::Key128>(out.size());
  auto d_vo = dev.alloc<std::uint64_t>(out.size());

  gpu::Stream& s = streams.rotate();
  s.copy_to_device_async(std::span<const gpu::Key128>(keys_a), d_ka.span());
  s.copy_to_device_async(std::span<const std::uint64_t>(vals_a),
                         d_va.span());
  s.copy_to_device_async(std::span<const gpu::Key128>(keys_b), d_kb.span());
  s.copy_to_device_async(std::span<const std::uint64_t>(vals_b),
                         d_vb.span());

  streams.begin_kernel(s);
  {
    gpu::StreamScope scope(dev, s);
    gpu::merge_pairs<std::uint64_t>(
        dev, d_ka.span(), d_va.span(), d_kb.span(), d_vb.span(), d_ko.span(),
        d_vo.span());
  }
  streams.end_kernel(s);

  std::vector<gpu::Key128> keys_out(out.size());
  std::vector<std::uint64_t> vals_out(out.size());
  s.copy_to_host_async(std::span<const gpu::Key128>(d_ko.span()),
                       std::span<gpu::Key128>(keys_out));
  s.copy_to_host_async(std::span<const std::uint64_t>(d_vo.span()),
                       std::span<std::uint64_t>(vals_out));
  join_records(keys_out, vals_out, out);
}

void device_windowed_merge_impl(
    Workspace& ws, std::span<const FpRecord> a, std::span<const FpRecord> b,
    std::uint64_t device_block_records,
    const std::function<void(std::span<const FpRecord>)>& sink,
    DeviceStreams& streams) {
  const std::size_t half =
      std::max<std::size_t>(1, device_block_records / 2);
  std::vector<FpRecord> merged;

  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    std::span<const FpRecord> wa = a.subspan(ia, std::min(half, a.size() - ia));
    std::span<const FpRecord> wb = b.subspan(ib, std::min(half, b.size() - ib));

    // Algorithm 1 lines 5-6: disjoint windows pass straight through.
    if (!fp_less(wb.front(), wa.back()) && wa.back().fp != wb.front().fp) {
      sink(wa);
      ia += wa.size();
      continue;
    }
    if (!fp_less(wa.front(), wb.back()) && wb.back().fp != wa.front().fp) {
      sink(wb);
      ib += wb.size();
      continue;
    }

    // Lines 8-15: equalize so the larger-tailed window is cut at the
    // upper bound of the smaller of the two last keys.
    const gpu::Key128 k = std::min(wa.back().fp, wb.back().fp);
    auto cut = [&k](std::span<const FpRecord> w) {
      const FpRecord probe{k, 0, 0};
      return static_cast<std::size_t>(
          std::upper_bound(w.begin(), w.end(), probe, fp_less) - w.begin());
    };
    if (k == wa.back().fp) {
      wb = wb.first(cut(wb));
    } else {
      wa = wa.first(cut(wa));
    }

    device_merge_windows(ws, wa, wb, merged, streams);
    sink(merged);
    ia += wa.size();
    ib += wb.size();
  }

  if (ia < a.size()) sink(a.subspan(ia));
  if (ib < b.size()) sink(b.subspan(ib));
}

void sort_host_block_impl(Workspace& ws, std::span<FpRecord> block,
                          std::uint64_t device_block_records,
                          DeviceStreams& streams) {
  const std::size_t m_d = std::max<std::uint64_t>(2, device_block_records);
  // Level 2a: device-sort each m_d chunk.
  std::vector<std::span<FpRecord>> runs;
  for (std::size_t off = 0; off < block.size(); off += m_d) {
    auto run = block.subspan(off, std::min(m_d, block.size() - off));
    device_sort_chunk(ws, run, streams);
    runs.push_back(run);
  }

  // Level 2b: iterative pairwise windowed merges until one run remains.
  // Ping-pong between the block storage and a tracked scratch buffer.
  std::vector<FpRecord> scratch;
  while (runs.size() > 1) {
    util::TrackedAllocation scratch_mem(*ws.host,
                                        block.size() * sizeof(FpRecord));
    scratch.resize(block.size());
    std::vector<std::span<FpRecord>> next;
    std::size_t out_off = 0;
    for (std::size_t i = 0; i < runs.size(); i += 2) {
      if (i + 1 == runs.size()) {
        std::copy(runs[i].begin(), runs[i].end(), scratch.begin() + out_off);
        next.push_back(
            std::span<FpRecord>(scratch).subspan(out_off, runs[i].size()));
        out_off += runs[i].size();
        continue;
      }
      const std::size_t merged_size = runs[i].size() + runs[i + 1].size();
      std::size_t cursor = out_off;
      device_windowed_merge_impl(
          ws, runs[i], runs[i + 1], device_block_records,
          [&scratch, &cursor](std::span<const FpRecord> part) {
            std::copy(part.begin(), part.end(), scratch.begin() + cursor);
            cursor += part.size();
          },
          streams);
      next.push_back(
          std::span<FpRecord>(scratch).subspan(out_off, merged_size));
      out_off += merged_size;
    }
    std::copy(scratch.begin(), scratch.end(), block.begin());
    // Spans in `next` point into scratch; rebase them onto `block`.
    runs.clear();
    std::size_t off = 0;
    for (const auto& r : next) {
      runs.push_back(block.subspan(off, r.size()));
      off += r.size();
    }
  }
}

}  // namespace

void device_windowed_merge(
    Workspace& ws, std::span<const FpRecord> a, std::span<const FpRecord> b,
    std::uint64_t device_block_records,
    const std::function<void(std::span<const FpRecord>)>& sink) {
  DeviceStreams streams(*ws.device, false);
  device_windowed_merge_impl(ws, a, b, device_block_records, sink, streams);
}

void sort_host_block(Workspace& ws, std::span<FpRecord> block,
                     std::uint64_t device_block_records) {
  DeviceStreams streams(*ws.device, false);
  sort_host_block_impl(ws, block, device_block_records, streams);
}

void sort_host_block(Workspace& ws, std::span<FpRecord> block,
                     const BlockGeometry& geometry) {
  DeviceStreams streams(*ws.device, geometry.streamed);
  sort_host_block_impl(ws, block, geometry.device_block_records, streams);
}

namespace {

// FileWindow (core/file_window.hpp) provides the streaming windows; the
// streamed path substitutes the prefetching io::AsyncRecordReader.

/// Algorithm 1's outer loop: merge two sorted windows into `out`, with host
/// windows of m_h / 2 records equalized by upper bound, and the actual
/// merging done by the device-windowed merge.
template <class WindowA, class WindowB, class Writer>
void merge_windows_loop(Workspace& ws, WindowA& wa, WindowB& wb, Writer& out,
                        const BlockGeometry& geometry,
                        DeviceStreams& streams) {
  auto sink = [&out](std::span<const FpRecord> part) { out.write(part); };

  while (true) {
    const bool has_a = wa.fill();
    const bool has_b = wb.fill();
    if (!has_a && !has_b) break;
    if (!has_a) {
      sink(wb.view());
      wb.consume(wb.view().size());
      continue;
    }
    if (!has_b) {
      sink(wa.view());
      wa.consume(wa.view().size());
      continue;
    }

    std::span<const FpRecord> va = wa.view();
    std::span<const FpRecord> vb = wb.view();

    if (!fp_less(vb.front(), va.back()) && va.back().fp != vb.front().fp) {
      sink(va);
      wa.consume(va.size());
      continue;
    }
    if (!fp_less(va.front(), vb.back()) && vb.back().fp != va.front().fp) {
      sink(vb);
      wb.consume(vb.size());
      continue;
    }

    // Equalize: cut the window with the larger last key at the upper bound
    // of the smaller last key (Algorithm 1 lines 8-15). The cut-off tail
    // stays in that side's buffer and is re-considered next iteration, so
    // cutting is always safe — even at end of file.
    const gpu::Key128 k = std::min(va.back().fp, vb.back().fp);
    auto cut = [&k](std::span<const FpRecord> w) {
      const FpRecord probe{k, 0, 0};
      return static_cast<std::size_t>(
          std::upper_bound(w.begin(), w.end(), probe, fp_less) - w.begin());
    };
    if (k == va.back().fp) {
      vb = vb.first(cut(vb));
    } else {
      va = va.first(cut(va));
    }

    device_windowed_merge_impl(ws, va, vb, geometry.device_block_records,
                               sink, streams);
    wa.consume(va.size());
    wb.consume(vb.size());
  }
}

/// Merge two sorted files into one. Streamed mode prefetches both inputs
/// and drains the output on background threads while device merges
/// double-buffer across the two streams.
void merge_files(Workspace& ws, const std::filesystem::path& in_a,
                 const std::filesystem::path& in_b,
                 const std::filesystem::path& out_path,
                 const BlockGeometry& geometry, DeviceStreams& streams) {
  const std::size_t half = std::max<std::uint64_t>(
      2, geometry.host_block_records / 2);

  if (geometry.streamed) {
    // Per side: up to 2x window live in FileWindow (cursor + carry-over)
    // plus one window of prefetch; output stages about one window.
    util::TrackedAllocation window_mem(*ws.host,
                                       7 * half * sizeof(FpRecord));
    FileWindow<io::AsyncRecordReader<FpRecord>> wa(half, in_a, *ws.io, half,
                                                   1);
    FileWindow<io::AsyncRecordReader<FpRecord>> wb(half, in_b, *ws.io, half,
                                                   1);
    io::AsyncRecordWriter<FpRecord> out(out_path, *ws.io, half, 2);
    merge_windows_loop(ws, wa, wb, out, geometry, streams);
    out.close();
    return;
  }

  util::TrackedAllocation window_mem(*ws.host, 2 * half * sizeof(FpRecord));
  FileWindow<io::RecordReader<FpRecord>> wa(half, in_a, *ws.io);
  FileWindow<io::RecordReader<FpRecord>> wb(half, in_b, *ws.io);
  io::RecordWriter<FpRecord> out(out_path, *ws.io);
  merge_windows_loop(ws, wa, wb, out, geometry, streams);
  out.close();
}

/// Background writer for finished level-1 runs: one run write in flight
/// while the device sorts the next host block. Failures surface on the next
/// submit() or on finish().
class RunWriter {
 public:
  explicit RunWriter(io::IoStats& stats)
      : stats_(stats), worker_([this] { run(); }) {}

  ~RunWriter() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  /// `on_done` (optional) runs on the writer thread after the run's bytes
  /// are fully written — the sort phase marks the run's checkpoint there, so
  /// a run is never recorded as done before it is durable.
  void submit(std::filesystem::path path, std::vector<FpRecord> block,
              std::function<void()> on_done = {}) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !job_.has_value() || error_ != nullptr; });
    if (error_ != nullptr) std::rethrow_exception(error_);
    job_.emplace(Job{std::move(path), std::move(block), std::move(on_done)});
    cv_.notify_all();
  }

  /// Wait for the queue to drain and the worker to exit; rethrows failures.
  void finish() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
      return (!job_.has_value() && !busy_) || error_ != nullptr;
    });
    stop_ = true;
    cv_.notify_all();
    lock.unlock();
    if (worker_.joinable()) worker_.join();
    if (error_ != nullptr) std::rethrow_exception(error_);
  }

 private:
  struct Job {
    std::filesystem::path path;
    std::vector<FpRecord> block;
    std::function<void()> on_done;
  };

  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      cv_.wait(lock, [this] { return job_.has_value() || stop_; });
      if (!job_.has_value()) return;  // stop requested, queue empty
      Job job = std::move(*job_);
      job_.reset();
      busy_ = true;
      cv_.notify_all();
      lock.unlock();
      try {
        io::write_all_records<FpRecord>(
            job.path, std::span<const FpRecord>(job.block), stats_);
        if (job.on_done) job.on_done();
      } catch (...) {
        lock.lock();
        error_ = std::current_exception();
        busy_ = false;
        cv_.notify_all();
        return;
      }
      lock.lock();
      busy_ = false;
      cv_.notify_all();
    }
  }

  io::IoStats& stats_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<Job> job_;
  bool busy_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
  std::thread worker_;
};

/// True when `path` exists and holds exactly `records` whole records.
bool file_holds_records(const std::filesystem::path& path,
                        std::uint64_t records) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  return !ec && size == records * sizeof(FpRecord);
}

/// Deterministically re-create one level-1 run that a crashed run's merges
/// already consumed: re-read its input slice, sort it, rewrite the run
/// file. Returns false when the input no longer holds the expected slice
/// (the caller then falls back to sorting from scratch).
bool rebuild_run(Workspace& ws, const std::filesystem::path& input,
                 const std::filesystem::path& run_path,
                 std::uint64_t skip_records, std::uint64_t records,
                 const BlockGeometry& geometry, DeviceStreams& streams) {
  util::TrackedAllocation block_mem(*ws.host, records * sizeof(FpRecord));
  std::vector<FpRecord> block;
  block.reserve(records);
  io::RecordReader<FpRecord> reader(input, *ws.io, skip_records);
  while (block.size() < records) {
    if (reader.read(block, records - block.size()) == 0) return false;
  }
  sort_host_block_impl(ws, block, geometry.device_block_records, streams);
  io::write_all_records(run_path, std::span<const FpRecord>(block), *ws.io);
  return true;
}

std::string sort_file_key(const std::filesystem::path& output) {
  return "sort:file:" + output.filename().string();
}

std::string sort_run_key(const std::filesystem::path& output,
                         std::size_t index) {
  return "sort:run:" + output.filename().string() + ":" +
         std::to_string(index);
}

/// Base path for a sort's scratch files (runs, merge generations). Uses the
/// output's stem so scratch names never contain the final ".sorted"
/// extension — fault policies and cleanup globs can target final files
/// without also matching scratch.
std::string scratch_base(const std::filesystem::path& output) {
  return (output.parent_path() / output.stem()).string();
}

/// Level 2: pairwise Algorithm-1 merges until one run remains, renamed to
/// `output`. Consumes the run files. Returns the number of merge
/// generations (one extra disk pass each). Shared by external_sort_file
/// and the public merge_sorted_runs so the fused shuffle's merge tree is
/// bit-identical to the staged path's.
unsigned merge_run_generations(Workspace& ws,
                               std::vector<std::filesystem::path> runs,
                               const std::filesystem::path& output,
                               const BlockGeometry& geometry,
                               DeviceStreams& streams) {
  unsigned generation = 0;
  while (runs.size() > 1) {
    std::vector<std::filesystem::path> next;
    for (std::size_t i = 0; i < runs.size(); i += 2) {
      if (i + 1 == runs.size()) {
        next.push_back(runs[i]);
        continue;
      }
      const std::filesystem::path merged =
          scratch_base(output) + ".gen" + std::to_string(generation) + "." +
          std::to_string(i / 2);
      obs::WallSpan merge_span;
      if (obs::Tracer* tracer = obs::Tracer::active()) {
        merge_span = obs::WallSpan(*tracer, tracer->track("core.sort"),
                                   "merge:" + merged.filename().string());
      }
      merge_files(ws, runs[i], runs[i + 1], merged, geometry, streams);
      std::filesystem::remove(runs[i]);
      std::filesystem::remove(runs[i + 1]);
      next.push_back(merged);
    }
    runs = std::move(next);
    ++generation;
  }
  std::filesystem::rename(runs.front(), output);
  return generation;
}

}  // namespace

SortFileStats external_sort_file(Workspace& ws,
                                 const std::filesystem::path& input,
                                 const std::filesystem::path& output,
                                 const BlockGeometry& geometry) {
  SortFileStats stats;
  const std::filesystem::path run_dir = output.parent_path();
  std::filesystem::create_directories(run_dir);

  obs::WallSpan file_span;
  if (obs::Tracer* tracer = obs::Tracer::active()) {
    file_span = obs::WallSpan(*tracer, tracer->track("core.sort"),
                              "sort:" + output.filename().string());
  }

  CheckpointManager* cm = ws.checkpoint;

  // Whole-file skip: a previous run finished sorting this file (the input
  // partition may already be gone — its contents live in `output`).
  if (cm != nullptr && cm->has(sort_file_key(output))) {
    const auto counters = cm->counters(sort_file_key(output));
    const auto records_it = counters.find("records");
    if (records_it != counters.end() &&
        file_holds_records(output, records_it->second)) {
      stats.records = records_it->second;
      stats.host_blocks =
          static_cast<unsigned>(cm->counter(sort_file_key(output),
                                            "host_blocks"));
      stats.disk_passes =
          static_cast<unsigned>(cm->counter(sort_file_key(output), "passes"));
      return stats;
    }
  }

  DeviceStreams streams(*ws.device, geometry.streamed);

  // Run-granular resume: reuse intact recorded runs, deterministically
  // rebuild ones a crashed run's merges already consumed, and continue the
  // input scan past everything they cover. Any inconsistency falls back to
  // sorting from scratch (fresh runs simply overwrite stale files).
  std::vector<std::filesystem::path> runs;
  std::uint64_t resume_skip = 0;
  if (cm != nullptr) {
    for (std::size_t i = 0; cm->has(sort_run_key(output, i)); ++i) {
      const std::uint64_t records =
          cm->counter(sort_run_key(output, i), "records");
      const std::filesystem::path run_path =
          scratch_base(output) + ".run" + std::to_string(i);
      if (records == 0 ||
          (!file_holds_records(run_path, records) &&
           !rebuild_run(ws, input, run_path, resume_skip, records, geometry,
                        streams))) {
        runs.clear();
        resume_skip = 0;
        break;
      }
      runs.push_back(run_path);
      resume_skip += records;
    }
  }
  stats.records = resume_skip;

  // Level 1: produce sorted host-block runs.
  if (geometry.streamed) {
    // Software pipeline: the reader prefetches block i+1 while the device
    // sorts block i and the RunWriter drains run i-1 — three host blocks
    // live at the pipeline's steady state.
    util::TrackedAllocation block_mem(
        *ws.host, 3 * geometry.host_block_records * sizeof(FpRecord));
    io::AsyncRecordReader<FpRecord> reader(
        input, *ws.io, geometry.host_block_records, 1, resume_skip);
    RunWriter writer(*ws.io);
    while (true) {
      std::vector<FpRecord> block;
      reader.read(block, geometry.host_block_records);
      if (block.empty()) break;
      stats.records += block.size();
      sort_host_block_impl(ws, block, geometry.device_block_records,
                           streams);
      std::filesystem::path run_path =
          scratch_base(output) + ".run" + std::to_string(runs.size());
      std::function<void()> on_done;
      if (cm != nullptr) {
        on_done = [cm, key = sort_run_key(output, runs.size()),
                   records = static_cast<std::uint64_t>(block.size())] {
          cm->record(key, {{"records", records}});
        };
      }
      runs.push_back(run_path);
      writer.submit(std::move(run_path), std::move(block),
                    std::move(on_done));
    }
    writer.finish();
  } else {
    io::RecordReader<FpRecord> reader(input, *ws.io, resume_skip);
    std::vector<FpRecord> block;
    util::TrackedAllocation block_mem(
        *ws.host, geometry.host_block_records * sizeof(FpRecord));
    while (true) {
      block.clear();
      reader.read(block, geometry.host_block_records);
      if (block.empty()) break;
      stats.records += block.size();
      sort_host_block_impl(ws, block, geometry.device_block_records,
                           streams);
      const std::filesystem::path run_path =
          scratch_base(output) + ".run" + std::to_string(runs.size());
      io::write_all_records(run_path, std::span<const FpRecord>(block),
                            *ws.io);
      if (cm != nullptr) {
        cm->record(sort_run_key(output, runs.size()),
                   {{"records", block.size()}});
      }
      runs.push_back(run_path);
    }
  }
  stats.host_blocks = static_cast<unsigned>(runs.size());
  stats.disk_passes = 1;

  if (runs.empty()) {
    io::RecordWriter<FpRecord> empty(output, *ws.io);
    empty.close();
    if (cm != nullptr) {
      cm->record(sort_file_key(output),
                 {{"records", 0},
                  {"host_blocks", 0},
                  {"passes", stats.disk_passes}});
    }
    return stats;
  }

  // Level 2: pairwise Algorithm-1 merges until one run remains.
  stats.disk_passes +=
      merge_run_generations(ws, std::move(runs), output, geometry, streams);
  if (cm != nullptr) {
    cm->record(sort_file_key(output),
               {{"records", stats.records},
                {"host_blocks", stats.host_blocks},
                {"passes", stats.disk_passes}});
  }
  return stats;
}

struct SortRunBuilder::Impl {
  Workspace ws;  // by value: a snapshot of the pointers, safe across threads
  std::filesystem::path output;
  BlockGeometry geometry;
  std::mutex* device_mutex = nullptr;
  DeviceStreams streams;
  RunWriter writer;
  util::TrackedAllocation mem;
  std::vector<FpRecord> block;
  std::vector<std::filesystem::path> runs;
  std::uint64_t records = 0;
  bool finished = false;

  Impl(Workspace& workspace, std::filesystem::path out,
       const BlockGeometry& geo, std::mutex* dev_mutex)
      : ws(workspace),
        output(std::move(out)),
        geometry(geo),
        device_mutex(dev_mutex),
        streams(*ws.device, geometry.streamed),
        writer(*ws.io),
        // Steady state: one block filling + one sorted block in flight at
        // the background writer (same budget shape as the streamed
        // external sort's pipeline).
        mem(*ws.host, 2 * geometry.host_block_records * sizeof(FpRecord)) {
    std::filesystem::create_directories(output.parent_path());
    block.reserve(geometry.host_block_records);
  }

  void flush_block() {
    if (block.empty()) return;
    {
      std::unique_lock<std::mutex> lock;
      if (device_mutex != nullptr) {
        lock = std::unique_lock<std::mutex>(*device_mutex);
      }
      sort_host_block_impl(ws, block, geometry.device_block_records,
                           streams);
    }
    std::filesystem::path run_path =
        scratch_base(output) + ".run" + std::to_string(runs.size());
    std::function<void()> on_done;
    if (ws.checkpoint != nullptr) {
      on_done = [cm = ws.checkpoint,
                 key = sort_run_key(output, runs.size()),
                 n = static_cast<std::uint64_t>(block.size())] {
        cm->record(key, {{"records", n}});
      };
    }
    runs.push_back(run_path);
    writer.submit(std::move(run_path), std::move(block), std::move(on_done));
    block = {};
    block.reserve(geometry.host_block_records);
  }
};

SortRunBuilder::SortRunBuilder(Workspace& ws, std::filesystem::path output,
                               const BlockGeometry& geometry,
                               std::mutex* device_mutex)
    : impl_(std::make_unique<Impl>(ws, std::move(output), geometry,
                                   device_mutex)) {}

SortRunBuilder::~SortRunBuilder() {
  if (impl_ != nullptr && !impl_->finished) {
    try {
      finish();
    } catch (...) {
    }
  }
}

void SortRunBuilder::append(std::span<const FpRecord> records) {
  impl_->records += records.size();
  while (!records.empty()) {
    const std::size_t room = static_cast<std::size_t>(
        impl_->geometry.host_block_records - impl_->block.size());
    const std::size_t take = std::min(room, records.size());
    impl_->block.insert(impl_->block.end(), records.begin(),
                        records.begin() + static_cast<std::ptrdiff_t>(take));
    records = records.subspan(take);
    if (impl_->block.size() >= impl_->geometry.host_block_records) {
      impl_->flush_block();
    }
  }
}

void SortRunBuilder::finish() {
  if (impl_->finished) return;
  impl_->flush_block();
  impl_->writer.finish();
  impl_->finished = true;
}

std::uint64_t SortRunBuilder::records() const { return impl_->records; }

const std::vector<std::filesystem::path>& SortRunBuilder::runs() const {
  return impl_->runs;
}

SortFileStats merge_sorted_runs(Workspace& ws,
                                std::vector<std::filesystem::path> runs,
                                const std::filesystem::path& output,
                                const BlockGeometry& geometry) {
  SortFileStats stats;
  stats.host_blocks = static_cast<unsigned>(runs.size());
  stats.disk_passes = 1;  // the run-production pass the builder already paid
  std::filesystem::create_directories(output.parent_path());

  obs::WallSpan file_span;
  if (obs::Tracer* tracer = obs::Tracer::active()) {
    file_span = obs::WallSpan(*tracer, tracer->track("core.sort"),
                              "sort:" + output.filename().string());
  }

  if (runs.empty()) {
    io::RecordWriter<FpRecord> empty(output, *ws.io);
    empty.close();
    return stats;
  }
  for (const auto& run : runs) {
    stats.records += std::filesystem::file_size(run) / sizeof(FpRecord);
  }
  DeviceStreams streams(*ws.device, geometry.streamed);
  stats.disk_passes +=
      merge_run_generations(ws, std::move(runs), output, geometry, streams);
  return stats;
}

SortResult run_sort_phase(Workspace& ws, MapResult& map,
                          const BlockGeometry& geometry) {
  SortResult result;
  const std::filesystem::path sorted_dir = ws.dir / "sorted";
  std::filesystem::create_directories(sorted_dir);

  for (unsigned length : map.suffixes->lengths()) {
    SortedPartition part;
    part.length = length;
    part.suffix_records = map.suffixes->count(length);
    part.prefix_records = map.prefixes->count(length);

    char name[64];
    std::snprintf(name, sizeof(name), "sfx_%05u.sorted", length);
    part.suffix_file = sorted_dir / name;
    std::snprintf(name, sizeof(name), "pfx_%05u.sorted", length);
    part.prefix_file = sorted_dir / name;

    const SortFileStats s1 = external_sort_file(
        ws, map.suffixes->path(length), part.suffix_file, geometry);
    map.suffixes->drop(length);
    const SortFileStats s2 = external_sort_file(
        ws, map.prefixes->path(length), part.prefix_file, geometry);
    map.prefixes->drop(length);

    result.records_sorted += s1.records + s2.records;
    result.max_disk_passes =
        std::max({result.max_disk_passes, s1.disk_passes, s2.disk_passes});

    if (ws.checkpoint != nullptr) {
      std::snprintf(name, sizeof(name), "sort:part:%05u", length);
      ws.checkpoint->record(name,
                            {{"suffix_records", part.suffix_records},
                             {"prefix_records", part.prefix_records},
                             {"suffix_passes", s1.disk_passes},
                             {"prefix_passes", s2.disk_passes}});
    }
    result.partitions.push_back(std::move(part));
  }
  LOG_INFO << "sort: " << result.records_sorted << " records, "
           << result.partitions.size() << " partitions, max passes "
           << result.max_disk_passes;
  return result;
}

}  // namespace lasagna::core
