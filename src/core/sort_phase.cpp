#include "core/sort_phase.hpp"

#include <algorithm>
#include <deque>

#include "gpu/primitives.hpp"
#include "io/record_stream.hpp"
#include "util/logging.hpp"

namespace lasagna::core {

namespace {

/// AoS -> SoA split for the device primitives.
void split_records(std::span<const FpRecord> records,
                   std::vector<gpu::Key128>& keys,
                   std::vector<std::uint64_t>& vals) {
  keys.resize(records.size());
  vals.resize(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    keys[i] = records[i].fp;
    vals[i] = records[i].vertex;
  }
}

void join_records(std::span<const gpu::Key128> keys,
                  std::span<const std::uint64_t> vals,
                  std::span<FpRecord> out) {
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out[i] = FpRecord{keys[i], static_cast<std::uint32_t>(vals[i]), 0};
  }
}

/// Device radix sort of one chunk (must fit m_d).
void device_sort_chunk(Workspace& ws, std::span<FpRecord> chunk) {
  if (chunk.size() < 2) return;
  gpu::Device& dev = *ws.device;

  std::vector<gpu::Key128> keys;
  std::vector<std::uint64_t> vals;
  split_records(chunk, keys, vals);

  auto d_keys = dev.alloc<gpu::Key128>(chunk.size());
  auto d_vals = dev.alloc<std::uint64_t>(chunk.size());
  dev.copy_to_device(std::span<const gpu::Key128>(keys), d_keys.span());
  dev.copy_to_device(std::span<const std::uint64_t>(vals), d_vals.span());

  gpu::sort_pairs<std::uint64_t>(dev, d_keys.span(), d_vals.span());

  dev.copy_to_host(std::span<const gpu::Key128>(d_keys.span()),
                   std::span<gpu::Key128>(keys));
  dev.copy_to_host(std::span<const std::uint64_t>(d_vals.span()),
                   std::span<std::uint64_t>(vals));
  join_records(keys, vals, chunk);
}

/// Device merge of two host windows that both fit on the device together.
void device_merge_windows(Workspace& ws, std::span<const FpRecord> a,
                          std::span<const FpRecord> b,
                          std::vector<FpRecord>& out) {
  gpu::Device& dev = *ws.device;
  out.resize(a.size() + b.size());
  if (a.empty()) {
    std::copy(b.begin(), b.end(), out.begin());
    return;
  }
  if (b.empty()) {
    std::copy(a.begin(), a.end(), out.begin());
    return;
  }

  std::vector<gpu::Key128> keys_a;
  std::vector<std::uint64_t> vals_a;
  std::vector<gpu::Key128> keys_b;
  std::vector<std::uint64_t> vals_b;
  split_records(a, keys_a, vals_a);
  split_records(b, keys_b, vals_b);

  auto d_ka = dev.alloc<gpu::Key128>(a.size());
  auto d_va = dev.alloc<std::uint64_t>(a.size());
  auto d_kb = dev.alloc<gpu::Key128>(b.size());
  auto d_vb = dev.alloc<std::uint64_t>(b.size());
  auto d_ko = dev.alloc<gpu::Key128>(out.size());
  auto d_vo = dev.alloc<std::uint64_t>(out.size());

  dev.copy_to_device(std::span<const gpu::Key128>(keys_a), d_ka.span());
  dev.copy_to_device(std::span<const std::uint64_t>(vals_a), d_va.span());
  dev.copy_to_device(std::span<const gpu::Key128>(keys_b), d_kb.span());
  dev.copy_to_device(std::span<const std::uint64_t>(vals_b), d_vb.span());

  gpu::merge_pairs<std::uint64_t>(
      dev, d_ka.span(), d_va.span(), d_kb.span(), d_vb.span(), d_ko.span(),
      d_vo.span());

  std::vector<gpu::Key128> keys_out(out.size());
  std::vector<std::uint64_t> vals_out(out.size());
  dev.copy_to_host(std::span<const gpu::Key128>(d_ko.span()),
                   std::span<gpu::Key128>(keys_out));
  dev.copy_to_host(std::span<const std::uint64_t>(d_vo.span()),
                   std::span<std::uint64_t>(vals_out));
  join_records(keys_out, vals_out, out);
}

}  // namespace

void device_windowed_merge(
    Workspace& ws, std::span<const FpRecord> a, std::span<const FpRecord> b,
    std::uint64_t device_block_records,
    const std::function<void(std::span<const FpRecord>)>& sink) {
  const std::size_t half =
      std::max<std::size_t>(1, device_block_records / 2);
  std::vector<FpRecord> merged;

  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    std::span<const FpRecord> wa = a.subspan(ia, std::min(half, a.size() - ia));
    std::span<const FpRecord> wb = b.subspan(ib, std::min(half, b.size() - ib));

    // Algorithm 1 lines 5-6: disjoint windows pass straight through.
    if (!fp_less(wb.front(), wa.back()) && wa.back().fp != wb.front().fp) {
      sink(wa);
      ia += wa.size();
      continue;
    }
    if (!fp_less(wa.front(), wb.back()) && wb.back().fp != wa.front().fp) {
      sink(wb);
      ib += wb.size();
      continue;
    }

    // Lines 8-15: equalize so the larger-tailed window is cut at the
    // upper bound of the smaller of the two last keys.
    const gpu::Key128 k = std::min(wa.back().fp, wb.back().fp);
    auto cut = [&k](std::span<const FpRecord> w) {
      const FpRecord probe{k, 0, 0};
      return static_cast<std::size_t>(
          std::upper_bound(w.begin(), w.end(), probe, fp_less) - w.begin());
    };
    if (k == wa.back().fp) {
      wb = wb.first(cut(wb));
    } else {
      wa = wa.first(cut(wa));
    }

    device_merge_windows(ws, wa, wb, merged);
    sink(merged);
    ia += wa.size();
    ib += wb.size();
  }

  if (ia < a.size()) sink(a.subspan(ia));
  if (ib < b.size()) sink(b.subspan(ib));
}

void sort_host_block(Workspace& ws, std::span<FpRecord> block,
                     std::uint64_t device_block_records) {
  const std::size_t m_d = std::max<std::uint64_t>(2, device_block_records);
  // Level 2a: device-sort each m_d chunk.
  std::vector<std::span<FpRecord>> runs;
  for (std::size_t off = 0; off < block.size(); off += m_d) {
    auto run = block.subspan(off, std::min(m_d, block.size() - off));
    device_sort_chunk(ws, run);
    runs.push_back(run);
  }

  // Level 2b: iterative pairwise windowed merges until one run remains.
  // Ping-pong between the block storage and a tracked scratch buffer.
  std::vector<FpRecord> scratch;
  while (runs.size() > 1) {
    util::TrackedAllocation scratch_mem(*ws.host,
                                        block.size() * sizeof(FpRecord));
    scratch.resize(block.size());
    std::vector<std::span<FpRecord>> next;
    std::size_t out_off = 0;
    for (std::size_t i = 0; i < runs.size(); i += 2) {
      if (i + 1 == runs.size()) {
        std::copy(runs[i].begin(), runs[i].end(), scratch.begin() + out_off);
        next.push_back(
            std::span<FpRecord>(scratch).subspan(out_off, runs[i].size()));
        out_off += runs[i].size();
        continue;
      }
      const std::size_t merged_size = runs[i].size() + runs[i + 1].size();
      std::size_t cursor = out_off;
      device_windowed_merge(
          ws, runs[i], runs[i + 1], device_block_records,
          [&scratch, &cursor](std::span<const FpRecord> part) {
            std::copy(part.begin(), part.end(), scratch.begin() + cursor);
            cursor += part.size();
          });
      next.push_back(
          std::span<FpRecord>(scratch).subspan(out_off, merged_size));
      out_off += merged_size;
    }
    std::copy(scratch.begin(), scratch.end(), block.begin());
    // Spans in `next` point into scratch; rebase them onto `block`.
    runs.clear();
    std::size_t off = 0;
    for (const auto& r : next) {
      runs.push_back(block.subspan(off, r.size()));
      off += r.size();
    }
  }
}

namespace {

/// Streaming window over a sorted record file, with carry-over support for
/// the disk-level Algorithm 1.
class FileWindow {
 public:
  FileWindow(const std::filesystem::path& path, std::size_t window_records,
             io::IoStats& stats)
      : reader_(path, stats), window_(window_records) {}

  /// Top up the buffer to the window size; returns false when no data
  /// remains at all.
  bool fill() {
    if (buffer_.size() < window_ && !reader_.eof()) {
      reader_.read(buffer_, window_ - buffer_.size());
    }
    return !buffer_.empty();
  }

  [[nodiscard]] std::span<const FpRecord> view() const { return buffer_; }

  void consume(std::size_t n) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  [[nodiscard]] bool exhausted() const {
    return reader_.eof() && buffer_.empty();
  }

 private:
  io::RecordReader<FpRecord> reader_;
  std::size_t window_;
  std::vector<FpRecord> buffer_;
};

/// Algorithm 1: merge two sorted files into one, with host windows of
/// m_h / 2 records equalized by upper bound, and the actual merging done
/// by the device-windowed merge.
void merge_files(Workspace& ws, const std::filesystem::path& in_a,
                 const std::filesystem::path& in_b,
                 const std::filesystem::path& out_path,
                 const BlockGeometry& geometry) {
  const std::size_t half = std::max<std::uint64_t>(
      2, geometry.host_block_records / 2);
  util::TrackedAllocation window_mem(*ws.host,
                                     2 * half * sizeof(FpRecord));

  FileWindow wa(in_a, half, *ws.io);
  FileWindow wb(in_b, half, *ws.io);
  io::RecordWriter<FpRecord> out(out_path, *ws.io);
  auto sink = [&out](std::span<const FpRecord> part) { out.write(part); };

  while (true) {
    const bool has_a = wa.fill();
    const bool has_b = wb.fill();
    if (!has_a && !has_b) break;
    if (!has_a) {
      sink(wb.view());
      wb.consume(wb.view().size());
      continue;
    }
    if (!has_b) {
      sink(wa.view());
      wa.consume(wa.view().size());
      continue;
    }

    std::span<const FpRecord> va = wa.view();
    std::span<const FpRecord> vb = wb.view();

    if (!fp_less(vb.front(), va.back()) && va.back().fp != vb.front().fp) {
      sink(va);
      wa.consume(va.size());
      continue;
    }
    if (!fp_less(va.front(), vb.back()) && vb.back().fp != va.front().fp) {
      sink(vb);
      wb.consume(vb.size());
      continue;
    }

    // Equalize: cut the window with the larger last key at the upper bound
    // of the smaller last key (Algorithm 1 lines 8-15). The cut-off tail
    // stays in that side's buffer and is re-considered next iteration, so
    // cutting is always safe — even at end of file.
    const gpu::Key128 k = std::min(va.back().fp, vb.back().fp);
    auto cut = [&k](std::span<const FpRecord> w) {
      const FpRecord probe{k, 0, 0};
      return static_cast<std::size_t>(
          std::upper_bound(w.begin(), w.end(), probe, fp_less) - w.begin());
    };
    if (k == va.back().fp) {
      vb = vb.first(cut(vb));
    } else {
      va = va.first(cut(va));
    }

    device_windowed_merge(ws, va, vb, geometry.device_block_records, sink);
    wa.consume(va.size());
    wb.consume(vb.size());
  }
  out.close();
}

}  // namespace

SortFileStats external_sort_file(Workspace& ws,
                                 const std::filesystem::path& input,
                                 const std::filesystem::path& output,
                                 const BlockGeometry& geometry) {
  SortFileStats stats;
  const std::filesystem::path run_dir = output.parent_path();
  std::filesystem::create_directories(run_dir);

  // Level 1: produce sorted host-block runs.
  std::vector<std::filesystem::path> runs;
  {
    io::RecordReader<FpRecord> reader(input, *ws.io);
    std::vector<FpRecord> block;
    util::TrackedAllocation block_mem(
        *ws.host, geometry.host_block_records * sizeof(FpRecord));
    while (true) {
      block.clear();
      reader.read(block, geometry.host_block_records);
      if (block.empty()) break;
      stats.records += block.size();
      sort_host_block(ws, block, geometry.device_block_records);
      const std::filesystem::path run_path =
          output.string() + ".run" + std::to_string(runs.size());
      io::write_all_records(run_path, std::span<const FpRecord>(block),
                            *ws.io);
      runs.push_back(run_path);
    }
  }
  stats.host_blocks = static_cast<unsigned>(runs.size());
  stats.disk_passes = 1;

  if (runs.empty()) {
    io::RecordWriter<FpRecord> empty(output, *ws.io);
    empty.close();
    return stats;
  }

  // Level 2: pairwise Algorithm-1 merges until one run remains.
  unsigned generation = 0;
  while (runs.size() > 1) {
    ++stats.disk_passes;
    std::vector<std::filesystem::path> next;
    for (std::size_t i = 0; i < runs.size(); i += 2) {
      if (i + 1 == runs.size()) {
        next.push_back(runs[i]);
        continue;
      }
      const std::filesystem::path merged =
          output.string() + ".gen" + std::to_string(generation) + "." +
          std::to_string(i / 2);
      merge_files(ws, runs[i], runs[i + 1], merged, geometry);
      std::filesystem::remove(runs[i]);
      std::filesystem::remove(runs[i + 1]);
      next.push_back(merged);
    }
    runs = std::move(next);
    ++generation;
  }

  std::filesystem::rename(runs.front(), output);
  return stats;
}

SortResult run_sort_phase(Workspace& ws, MapResult& map,
                          const BlockGeometry& geometry) {
  SortResult result;
  const std::filesystem::path sorted_dir = ws.dir / "sorted";
  std::filesystem::create_directories(sorted_dir);

  for (unsigned length : map.suffixes->lengths()) {
    SortedPartition part;
    part.length = length;
    part.suffix_records = map.suffixes->count(length);
    part.prefix_records = map.prefixes->count(length);

    char name[64];
    std::snprintf(name, sizeof(name), "sfx_%05u.sorted", length);
    part.suffix_file = sorted_dir / name;
    std::snprintf(name, sizeof(name), "pfx_%05u.sorted", length);
    part.prefix_file = sorted_dir / name;

    const SortFileStats s1 = external_sort_file(
        ws, map.suffixes->path(length), part.suffix_file, geometry);
    map.suffixes->drop(length);
    const SortFileStats s2 = external_sort_file(
        ws, map.prefixes->path(length), part.prefix_file, geometry);
    map.prefixes->drop(length);

    result.records_sorted += s1.records + s2.records;
    result.max_disk_passes =
        std::max({result.max_disk_passes, s1.disk_passes, s2.disk_passes});
    result.partitions.push_back(std::move(part));
  }
  LOG_INFO << "sort: " << result.records_sorted << " records, "
           << result.partitions.size() << " partitions, max passes "
           << result.max_disk_passes;
  return result;
}

}  // namespace lasagna::core
