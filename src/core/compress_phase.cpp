#include "core/compress_phase.hpp"

#include <algorithm>
#include <numeric>

#include "gpu/primitives.hpp"
#include "io/file_stream.hpp"
#include "graph/traverse.hpp"
#include "seq/dna.hpp"
#include "seq/read_store.hpp"
#include "util/logging.hpp"

namespace lasagna::core {

std::uint64_t compute_n50(std::vector<std::uint64_t> lengths) {
  if (lengths.empty()) return 0;
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  const std::uint64_t total =
      std::accumulate(lengths.begin(), lengths.end(), std::uint64_t{0});
  std::uint64_t running = 0;
  for (const std::uint64_t len : lengths) {
    running += len;
    if (running * 2 >= total) return len;
  }
  return lengths.back();
}

namespace {

/// Per-vertex placement slot: where in the contig buffer a read's overhang
/// lands, and how many bases to take.
struct Placement {
  std::uint64_t offset = 0;
  std::uint32_t overhang = 0;
  std::uint32_t contig = 0;
};

}  // namespace

CompressResult run_compress_phase(
    Workspace& ws, const graph::StringGraph& graph,
    const std::vector<std::filesystem::path>& fastqs,
    const std::filesystem::path& output, const CompressOptions& options) {
  CompressResult result;
  gpu::Device& dev = *ws.device;

  // Stage 1 (host, multi-threaded in the paper; brief even for the largest
  // dataset): read lengths then path extraction.
  std::vector<std::uint32_t> read_lengths(graph.read_count());
  if (options.read_lengths.size() >= graph.read_count()) {
    for (std::uint32_t id = 0; id < graph.read_count(); ++id) {
      read_lengths[id] = options.read_lengths[id];
    }
  } else {
    seq::ReadBatchStream stream(fastqs, 1 << 20);
    seq::ReadBatch batch;
    while (stream.next(batch)) {
      for (std::uint32_t i = 0; i < batch.size(); ++i) {
        const std::uint32_t id = batch.first_id + i;
        if (id < read_lengths.size()) {
          read_lengths[id] = static_cast<std::uint32_t>(batch.reads[i].size());
        }
      }
    }
  }

  graph::TraverseOptions traverse_options;
  traverse_options.include_singletons = options.include_singletons;
  const std::vector<graph::Path> paths = graph::extract_paths(
      graph, [&read_lengths](graph::ReadId r) { return read_lengths[r]; },
      traverse_options);
  result.paths = paths.size();

  // Stage 2 (device, Fig 7): flatten paths, exclusive-scan the per-path
  // step counts for path offsets, exclusive-scan all overhang lengths for
  // contig base offsets, then scatter each (offset, overhang) slot to its
  // read-ID so the read stream can place substrings directly.
  std::vector<std::uint64_t> steps_per_path(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    steps_per_path[p] = paths[p].size();
  }
  std::vector<std::uint64_t> path_offsets(paths.size());
  const std::uint64_t total_steps = gpu::exclusive_scan<std::uint64_t>(
      dev, steps_per_path, path_offsets);

  std::vector<std::uint64_t> overhangs(total_steps);
  std::vector<graph::VertexId> vertices(total_steps);
  std::vector<std::uint32_t> contig_of_step(total_steps);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    for (std::size_t s = 0; s < paths[p].size(); ++s) {
      const std::uint64_t at = path_offsets[p] + s;
      overhangs[at] = paths[p][s].overhang;
      vertices[at] = paths[p][s].vertex;
      contig_of_step[at] = static_cast<std::uint32_t>(p);
    }
  }

  std::vector<std::uint64_t> base_offsets(total_steps);
  const std::uint64_t total_bases = gpu::exclusive_scan<std::uint64_t>(
      dev, overhangs, base_offsets);

  // Contig start offsets = base offset of each path's first step.
  std::vector<std::uint64_t> contig_start(paths.size());
  std::vector<std::uint64_t> contig_length(paths.size());
  {
    std::vector<std::uint64_t> starts(paths.size());
    gpu::gather<std::uint64_t, std::uint64_t>(dev, base_offsets,
                                              path_offsets, starts);
    contig_start = std::move(starts);
    for (std::size_t p = 0; p < paths.size(); ++p) {
      const std::uint64_t end = p + 1 < paths.size()
                                    ? contig_start[p + 1]
                                    : total_bases;
      contig_length[p] = end - contig_start[p];
    }
  }

  // Scatter slots keyed by vertex id ("using the array of read-IDs as a
  // stencil"). A vertex appears in at most one path (in/out degree <= 1).
  std::vector<Placement> placement(graph.vertex_count());
  std::vector<std::uint8_t> placed(graph.vertex_count(), 0);
  for (std::uint64_t s = 0; s < total_steps; ++s) {
    placement[vertices[s]] =
        Placement{base_offsets[s], static_cast<std::uint32_t>(overhangs[s]),
                  contig_of_step[s]};
    placed[vertices[s]] = 1;
  }
  dev.charge_kernel(total_steps * (sizeof(Placement) + sizeof(std::uint32_t)),
                    total_steps);

  util::TrackedAllocation contig_mem(*ws.host, total_bases);
  std::string contig_bases(total_bases, 'N');

  // Final pass: stream reads and copy the first `overhang` bases of the
  // relevant strand into the contig buffer.
  {
    seq::ReadBatchStream stream(fastqs, 1 << 20);
    seq::ReadBatch batch;
    while (stream.next(batch)) {
      for (std::uint32_t i = 0; i < batch.size(); ++i) {
        const std::uint32_t id = batch.first_id + i;
        for (unsigned strand = 0; strand < 2; ++strand) {
          const graph::VertexId v = (id << 1) | strand;
          if (v >= placed.size() || placed[v] == 0) continue;
          const Placement& slot = placement[v];
          const std::string bases =
              strand == 0 ? batch.reads[i]
                          : seq::reverse_complement(batch.reads[i]);
          contig_bases.replace(slot.offset, slot.overhang, bases, 0,
                               slot.overhang);
          ++result.reads_placed;
        }
      }
    }
  }

  // Emit FASTA through the injectable write stream, into a temp file that
  // is renamed over the output only on success — a fault (injected or real)
  // mid-write never leaves a partial contig file behind.
  const std::filesystem::path tmp_output = output.string() + ".tmp";
  std::vector<std::uint64_t> kept_lengths;
  try {
    io::WriteOnlyStream out(tmp_output, *ws.io);
    std::string record;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (contig_length[p] < options.min_contig_length) continue;
      record = ">contig_" + std::to_string(p) +
               " reads=" + std::to_string(paths[p].size()) +
               " len=" + std::to_string(contig_length[p]) + '\n';
      const std::string_view view(contig_bases.data() + contig_start[p],
                                  contig_length[p]);
      for (std::size_t off = 0; off < view.size(); off += 70) {
        record += view.substr(off, 70);
        record += '\n';
      }
      out.write_bytes(std::as_bytes(std::span<const char>(record)));
      kept_lengths.push_back(contig_length[p]);
      result.stats.total_bases += contig_length[p];
      result.stats.max_length =
          std::max<std::uint64_t>(result.stats.max_length, contig_length[p]);
    }
    out.close();
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp_output, ec);
    throw;
  }
  std::filesystem::rename(tmp_output, output);
  result.stats.count = kept_lengths.size();
  result.stats.n50 = compute_n50(std::move(kept_lengths));

  LOG_INFO << "compress: " << result.stats.count << " contigs, "
           << result.stats.total_bases << " bases, N50 " << result.stats.n50;
  return result;
}

}  // namespace lasagna::core
