// Map phase (paper section III-A): stream read batches to the device,
// generate prefix/suffix fingerprints for each read and its reverse
// complement with the Hillis-Steele kernel, and partition the resulting
// (fingerprint, vertex) tuples by prefix/suffix length into per-length
// files on disk.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "fingerprint/kernels.hpp"
#include "io/partition.hpp"

namespace lasagna::core {

/// Everything the map phase leaves behind for the sort phase.
struct MapResult {
  std::unique_ptr<io::PartitionSet<FpRecord>> suffixes;
  std::unique_ptr<io::PartitionSet<FpRecord>> prefixes;
  std::uint32_t read_count = 0;
  std::uint64_t total_bases = 0;
  unsigned max_read_length = 0;
  std::uint64_t tuples_emitted = 0;
  /// Length of every processed read, indexed by read id (the compress
  /// phase needs lengths for overhang computation; recording them here
  /// saves it one full re-stream of the input).
  std::vector<std::uint16_t> read_lengths;
  /// Bytes pushed through host-side tuple emission (staging + partition
  /// appends); the pipeline's overlap model charges them to the host lane
  /// at the machine's modeled host bandwidth.
  std::uint64_t host_bytes = 0;
};

struct MapOptions {
  unsigned min_overlap = 63;
  fingerprint::FingerprintConfig fingerprints =
      fingerprint::FingerprintConfig::standard();
  fingerprint::KernelStrategy strategy =
      fingerprint::KernelStrategy::kBlockPerRead;
  /// Restrict to a sub-range of reads [first_read, first_read + max_reads);
  /// used by the distributed map where the master hands out input blocks.
  std::uint64_t first_read = 0;
  std::uint64_t max_reads = UINT64_MAX;
  /// Sub-partition each length by fingerprint into this many buckets
  /// (composite partition key = length * buckets + fp % buckets). Matching
  /// suffix/prefix fingerprints are equal and so land in the same bucket,
  /// which makes per-bucket overlap detection complete — the partitioning
  /// the paper proposes as future work (IV-D) for a parallel distributed
  /// reduce. 1 = plain per-length partitioning (keys are lengths).
  unsigned fingerprint_buckets = 1;
  /// Run the three-stage software pipeline: background batch prefetch,
  /// double-buffered fingerprint kernels, and background tuple emission.
  /// Partition files are byte-identical either way.
  bool streamed = false;
  /// Number of strand chunks for parallel emission (0 = auto: 4x the pool
  /// size). Output bytes are identical for every value; exposed so tests
  /// can prove it.
  unsigned emission_chunks = 0;
};

/// Composite partition-key helpers (identity when buckets == 1).
[[nodiscard]] constexpr unsigned partition_key(unsigned length,
                                               unsigned bucket,
                                               unsigned buckets) {
  return length * buckets + bucket;
}
[[nodiscard]] constexpr unsigned key_length(unsigned key, unsigned buckets) {
  return key / buckets;
}
[[nodiscard]] constexpr unsigned key_bucket(unsigned key, unsigned buckets) {
  return key % buckets;
}

/// Run the map phase over `fastq` within `ws`. Partition files are created
/// under ws.dir. Throws on malformed input.
[[nodiscard]] MapResult run_map_phase(
    Workspace& ws, const std::vector<std::filesystem::path>& fastqs,
    const MapOptions& options);

inline MapResult run_map_phase(Workspace& ws,
                               const std::filesystem::path& fastq,
                               const MapOptions& options) {
  return run_map_phase(ws, std::vector<std::filesystem::path>{fastq},
                       options);
}

}  // namespace lasagna::core
