// Reduce phase (paper section III-C, Algorithm 2): stream sorted suffix and
// prefix lists per partition, equalize fingerprint windows, compute batched
// lower/upper bounds on the device, and feed the resulting candidate edges
// to the greedy string graph — processing partitions in *descending* length
// order so that the greedy heuristic keeps the longest overlaps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/config.hpp"
#include "core/sort_phase.hpp"
#include "graph/string_graph.hpp"
#include "seq/read_store.hpp"

namespace lasagna::core {

struct ReduceOptions {
  /// Verify candidate matches against the actual sequences (diagnostics);
  /// requires `reads`.
  bool verify_overlaps = false;
  const seq::PackedReads* reads = nullptr;
  /// When set, candidate pairs are delivered here INSTEAD of being offered
  /// to the greedy graph — used by the bulk-synchronous and speculative
  /// distributed reduces, where greedy resolution happens globally per
  /// superstep. The overlap length and matching fingerprint ride along so
  /// the resolver can stable-merge per-bucket candidate streams back into
  /// the exact single-node offer order (which, since the canonical tie
  /// order, is layout-invariant).
  std::function<void(graph::VertexId, graph::VertexId, std::uint16_t,
                     const gpu::Key128&)>
      candidate_sink;
  /// Overlap the phase's three lanes: async window prefetch from disk,
  /// double-buffered device bound kernels, and host greedy insertion
  /// deferred one window behind the device. The edge set is identical to
  /// the synchronous path's (insertion order is preserved exactly).
  bool streamed = false;
};

struct ReduceResult {
  std::unique_ptr<graph::StringGraph> graph;
  std::uint64_t candidate_edges = 0;  ///< fingerprint matches offered
  std::uint64_t accepted_edges = 0;   ///< survived the greedy filter (pairs)
  std::uint64_t false_positives = 0;  ///< only counted when verifying
  /// Bytes pushed through host-side greedy edge insertion; the pipeline's
  /// overlap model charges them to the host lane at the machine's modeled
  /// host bandwidth.
  std::uint64_t host_bytes = 0;
};

/// Build the greedy string graph from all sorted partitions.
[[nodiscard]] ReduceResult run_reduce_phase(Workspace& ws,
                                            const SortResult& sorted,
                                            std::uint32_t read_count,
                                            const ReduceOptions& options);

/// Process one partition into an existing graph (used by the distributed
/// reduce, where the out-degree bit-vector token arrives between
/// partitions).
struct PartitionReduceStats {
  std::uint64_t candidates = 0;
  std::uint64_t accepted = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t host_bytes = 0;  ///< host greedy-insertion bytes processed
};
PartitionReduceStats reduce_partition(Workspace& ws,
                                      const SortedPartition& partition,
                                      graph::StringGraph& graph,
                                      const ReduceOptions& options);

}  // namespace lasagna::core
