// Streaming window over a sorted FpRecord file, with carry-over support for
// the window-equalized merge/match loops (Algorithms 1 and 2). Shared by the
// sort phase (disk-level merge) and the reduce phase (suffix/prefix match);
// templated over the reader so streamed paths can substitute the prefetching
// io::AsyncRecordReader — both deliver the exact same record sequence.
//
// consume() only advances a cursor; the dead prefix is dropped lazily in
// fill() once it spans at least one window, so advancing by n records costs
// amortized O(n) instead of a front-erase memmove per window.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "core/config.hpp"

namespace lasagna::core {

template <class Reader>
class FileWindow {
 public:
  template <class... ReaderArgs>
  explicit FileWindow(std::size_t window_records, ReaderArgs&&... args)
      : reader_(std::forward<ReaderArgs>(args)...), window_(window_records) {}

  /// Top up the buffer to the window size; returns false when no data
  /// remains at all.
  bool fill() {
    if (head_ >= window_ || head_ >= buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(head_, buffer_.size())));
      head_ = 0;
    }
    const std::size_t live = buffer_.size() - head_;
    if (live < window_ && !reader_.eof()) {
      reader_.read(buffer_, window_ - live);
    }
    return head_ < buffer_.size();
  }

  [[nodiscard]] std::span<const FpRecord> view() const {
    return std::span<const FpRecord>(buffer_).subspan(
        head_, std::min(window_, buffer_.size() - head_));
  }

  void consume(std::size_t n) { head_ += n; }

  [[nodiscard]] bool exhausted() const {
    return reader_.eof() && head_ >= buffer_.size();
  }

  /// True once the underlying reader has observed end of file (the live
  /// window may still hold records).
  [[nodiscard]] bool stream_done() const { return reader_.eof(); }

  /// Pull records while their fingerprint equals `fp` (window-overflow
  /// fallback for pathological duplicate runs). O(1) amortized per record:
  /// only the cursor advances, and refills recycle the buffer in place.
  void append_run(const gpu::Key128& fp, std::vector<FpRecord>& out) {
    for (;;) {
      while (head_ < buffer_.size() && buffer_[head_].fp == fp) {
        out.push_back(buffer_[head_]);
        ++head_;
      }
      if (head_ < buffer_.size() || reader_.eof()) return;
      buffer_.clear();
      head_ = 0;
      reader_.read(buffer_, window_);
      if (buffer_.empty()) return;
    }
  }

 private:
  Reader reader_;
  std::size_t window_;
  std::vector<FpRecord> buffer_;
  std::size_t head_ = 0;
};

}  // namespace lasagna::core
