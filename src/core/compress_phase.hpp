// Compress phase (paper section III-D): traverse the greedy string graph
// into paths, compute contig offsets on the device with exclusive scans,
// distribute per-read (offset, overhang) slots with a gather keyed by
// read-ID, then re-stream the reads and write each read's overhang into its
// contig position. Emits FASTA.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "graph/string_graph.hpp"

namespace lasagna::core {

struct CompressOptions {
  bool include_singletons = false;
  /// Contigs shorter than this are dropped from the output (0 = keep all).
  std::uint32_t min_contig_length = 0;
  /// Read lengths by id, if the caller already knows them (the map phase
  /// records them); empty = compress re-streams the input to collect them.
  std::vector<std::uint16_t> read_lengths;
};

struct ContigStats {
  std::uint64_t count = 0;
  std::uint64_t total_bases = 0;
  std::uint64_t max_length = 0;
  std::uint64_t n50 = 0;
};

struct CompressResult {
  ContigStats stats;
  std::uint64_t paths = 0;
  std::uint64_t reads_placed = 0;
};

/// Generate contigs from `graph`, re-streaming the original reads from
/// `fastq`, and write them as FASTA to `output`.
[[nodiscard]] CompressResult run_compress_phase(
    Workspace& ws, const graph::StringGraph& graph,
    const std::vector<std::filesystem::path>& fastqs,
    const std::filesystem::path& output, const CompressOptions& options);

inline CompressResult run_compress_phase(Workspace& ws,
                                         const graph::StringGraph& graph,
                                         const std::filesystem::path& fastq,
                                         const std::filesystem::path& output,
                                         const CompressOptions& options) {
  return run_compress_phase(ws, graph,
                            std::vector<std::filesystem::path>{fastq},
                            output, options);
}

/// N50 of a set of contig lengths (length L such that contigs >= L hold at
/// least half the total bases).
[[nodiscard]] std::uint64_t compute_n50(std::vector<std::uint64_t> lengths);

}  // namespace lasagna::core
