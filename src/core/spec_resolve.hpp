// Partitioned speculative greedy resolution with a reconciliation
// superstep — the conflict-free parallel alternative to the paper's
// token-serialized graph build (III-E3) and to the serial BSP superstep
// (IV-D).
//
// Every candidate edge carries a *global rank*: partitions are processed
// in descending length order, and within a partition offers follow the
// canonical layout-invariant tie order (reduce_phase.cpp). Sequential
// greedy over all candidates in rank order is exactly the single-node
// reduce; the resolver reproduces that edge set without serializing on a
// token:
//
//   speculate — each domain (a node, or any partitioning that owns whole
//               partitions) runs greedy over its own live candidates in
//               rank order against the committed bits plus its local
//               speculative bits, and proposes its local acceptances.
//   reconcile — a serial master merges all proposals in global rank
//               order. A proposal that conflicts with the committed bits
//               *dies* (its blocker committed earlier, hence outranks or
//               legitimately precedes it — see below). Once any proposal
//               has died this round, every later proposal is *deferred*
//               to the next round (a death can resurrect a hidden
//               lower-rank candidate in the dead proposal's domain, and
//               that candidate could outrank — and block — a later
//               proposal). Proposals before the first death commit.
//   repeat    — domains that had a death are dirty and re-speculate.
//               Deferred proposals from death-free domains are *retained*
//               at the master (the owning domain's local state did not
//               change, so a replay would re-propose them verbatim) and
//               re-enter the next merge without being rescanned or
//               resent; a round with no deaths is the fixpoint.
//
// Soundness of each commit (it is in the sequential-greedy edge set) is by
// induction over rank: a committed blocker is itself sound, and any
// lower-rank sequential acceptance that would block a commit would have
// been proposed (or committed) before it this round. Every non-final
// round kills at least one candidate, so rounds <= deaths + 1 and the
// fixpoint equals sequential greedy exactly — byte-identical contigs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/string_graph.hpp"

namespace lasagna::core {

class SpeculativeResolver {
 public:
  /// One local acceptance shipped to the reconciler. POD — it is also the
  /// distributed driver's wire format.
  struct Proposal {
    graph::VertexId u = 0;
    graph::VertexId v = 0;
    std::uint16_t length = 0;
    std::uint16_t pad = 0;
    std::uint64_t rank = 0;
  };
  static_assert(sizeof(Proposal) == 24);

  struct RoundReport {
    unsigned round = 0;
    std::uint64_t rescanned = 0;  ///< candidates re-examined by dirty domains
    std::uint64_t proposals = 0;
    std::uint64_t committed = 0;  ///< accepted pairs this round
    std::uint64_t conflicts = 0;  ///< deaths against committed bits
    std::uint64_t deferred = 0;
    std::uint64_t retained = 0;  ///< deferred proposals parked at the master
    std::vector<graph::Edge> delta;  ///< primary edges committed this round
    bool done = false;               ///< fixpoint reached
  };

  SpeculativeResolver(std::uint32_t read_count, unsigned domain_count);

  /// Register one candidate. Per domain, calls must arrive in ascending
  /// rank order (the natural order of the per-partition scan); ranks are
  /// globally unique. Appending *after* a fixpoint is allowed and re-opens
  /// resolution — sequential greedy's decisions on a rank prefix depend
  /// only on that prefix, so a pipelined driver may run each scanned
  /// partition's candidates to fixpoint while later partitions are still
  /// scanning (the reconciliation supersteps hide under the scan).
  void add_candidate(unsigned domain, graph::VertexId u, graph::VertexId v,
                     std::uint16_t length, std::uint64_t rank);

  /// Domains that must (re-)speculate in the next step. Initially every
  /// domain with candidates.
  [[nodiscard]] const std::vector<unsigned>& dirty_domains() const {
    return dirty_;
  }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] unsigned rounds() const { return round_; }

  /// Speculate phase for one dirty domain: local greedy over its live
  /// candidates. Safe to call concurrently for *different* domains (reads
  /// the committed graph, writes only domain-local state). `rescanned`
  /// (optional) receives the number of candidates examined.
  [[nodiscard]] std::vector<Proposal> speculate(
      unsigned domain, std::uint64_t* rescanned = nullptr);

  /// Reconcile phase (serial): merge the dirty domains' proposals, apply
  /// the death / defer-after-first-death / commit rule, update domain
  /// states and the dirty set. `per_domain` must hold one entry per
  /// dirty_domains() element, in the same order.
  RoundReport reconcile(const std::vector<std::vector<Proposal>>& per_domain);

  /// Convenience driver: run speculate/reconcile rounds to the fixpoint,
  /// accumulating the per-round reports.
  std::vector<RoundReport> run_to_fixpoint();

  /// The committed graph (the sequential-greedy edge set once done()).
  [[nodiscard]] const graph::StringGraph& graph() const { return graph_; }
  [[nodiscard]] graph::StringGraph& graph() { return graph_; }

 private:
  struct Candidate {
    graph::VertexId u = 0;
    graph::VertexId v = 0;
    std::uint16_t length = 0;
    std::uint64_t rank = 0;
  };
  struct Domain {
    std::vector<Candidate> live;       ///< rank-ascending
    std::vector<std::size_t> proposed; ///< indices into live, last speculate
  };
  /// A deferred proposal parked at the master. Valid only while its owner
  /// domain stays clean: a clean domain never re-speculates, so the live
  /// index is stable; the moment the domain dirties, its pending entries
  /// are discarded (the replay re-derives them).
  struct Pending {
    Proposal p;
    unsigned domain = 0;
    std::size_t live_idx = 0;
  };

  void mark_dirty(unsigned domain);

  graph::StringGraph graph_;
  std::vector<Domain> domains_;
  std::vector<unsigned> dirty_;
  std::vector<char> is_dirty_;
  std::vector<Pending> retained_;
  unsigned round_ = 0;
  bool done_ = false;
};

}  // namespace lasagna::core
