#include "core/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

#include "obs/trace.hpp"

namespace lasagna::core {

namespace {

constexpr const char* kManifestName = "checkpoint.manifest";
constexpr const char* kHeader = "lasagna-checkpoint 1";

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_str(std::uint64_t hash, const std::string& s) {
  return fnv1a(hash, s.data(), s.size());
}

template <typename T>
std::uint64_t fnv1a_value(std::uint64_t hash, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a(hash, &value, sizeof(value));
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

}  // namespace

CheckpointManager::CheckpointManager(std::filesystem::path dir,
                                     std::uint64_t input_fingerprint,
                                     std::uint64_t config_hash)
    : dir_(std::move(dir)),
      input_fingerprint_(input_fingerprint),
      config_hash_(config_hash) {}

bool CheckpointManager::load() {
  obs::WallSpan span;
  if (obs::Tracer* tracer = obs::Tracer::active()) {
    span = obs::WallSpan(*tracer, tracer->track("core.checkpoint"), "load");
  }
  std::ifstream in(dir_ / kManifestName);
  if (!in) return false;

  std::string line;
  if (!std::getline(in, line) || line != kHeader) return false;

  std::uint64_t input = 0;
  std::uint64_t config = 0;
  std::map<std::string, Counters> entries;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "input") {
      fields >> std::hex >> input;
    } else if (tag == "config") {
      fields >> std::hex >> config;
    } else if (tag == "entry") {
      std::string key;
      fields >> key;
      if (key.empty()) return false;  // truncated line: reject the manifest
      Counters counters;
      std::string pair;
      while (fields >> pair) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) return false;
        counters[pair.substr(0, eq)] = std::stoull(pair.substr(eq + 1));
      }
      entries[key] = std::move(counters);
    } else {
      return false;  // unknown tag: written by a newer format
    }
  }
  if (input != input_fingerprint_ || config != config_hash_) return false;

  const std::scoped_lock lock(mutex_);
  entries_ = std::move(entries);
  return true;
}

void CheckpointManager::reset() {
  const std::scoped_lock lock(mutex_);
  entries_.clear();
  // Drop every checkpoint.* file (manifest + sidecars) from earlier runs.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().filename().string().rfind("checkpoint.", 0) == 0) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  persist_locked();
}

bool CheckpointManager::has(const std::string& key) const {
  const std::scoped_lock lock(mutex_);
  return entries_.count(key) != 0;
}

CheckpointManager::Counters CheckpointManager::counters(
    const std::string& key) const {
  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? Counters{} : it->second;
}

std::uint64_t CheckpointManager::counter(const std::string& key,
                                         const std::string& name,
                                         std::uint64_t fallback) const {
  const std::scoped_lock lock(mutex_);
  const auto entry = entries_.find(key);
  if (entry == entries_.end()) return fallback;
  const auto it = entry->second.find(name);
  return it == entry->second.end() ? fallback : it->second;
}

std::vector<std::string> CheckpointManager::keys_with_prefix(
    const std::string& prefix) const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.rfind(prefix, 0) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void CheckpointManager::record(const std::string& key,
                               const Counters& counters) {
  obs::WallSpan span;
  if (obs::Tracer* tracer = obs::Tracer::active()) {
    span = obs::WallSpan(*tracer, tracer->track("core.checkpoint"),
                         "record:" + key);
  }
  const std::scoped_lock lock(mutex_);
  entries_[key] = counters;
  persist_locked();
}

void CheckpointManager::persist_locked() {
  const std::filesystem::path final_path = dir_ / kManifestName;
  const std::filesystem::path tmp_path = dir_ / (std::string(kManifestName) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot write checkpoint manifest " +
                               tmp_path.string());
    }
    out << kHeader << '\n';
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(input_fingerprint_));
    out << "input " << hex << '\n';
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(config_hash_));
    out << "config " << hex << '\n';
    for (const auto& [key, counters] : entries_) {
      out << "entry " << key;
      for (const auto& [name, value] : counters) {
        out << ' ' << name << '=' << value;
      }
      out << '\n';
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("short write to checkpoint manifest " +
                               tmp_path.string());
    }
  }
  std::filesystem::rename(tmp_path, final_path);
}

std::uint64_t CheckpointManager::fingerprint_inputs(
    const std::vector<std::filesystem::path>& files) {
  std::uint64_t hash = kFnvOffset;
  for (const auto& file : files) {
    hash = fnv1a_str(hash, file.filename().string());
    const std::uint64_t size = std::filesystem::file_size(file);
    hash = fnv1a_value(hash, size);
  }
  return hash;
}

std::uint64_t hash_assembly_config(const AssemblyConfig& config) {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a_value(hash, config.min_overlap);
  hash = fnv1a_value(hash, config.machine.host_memory_bytes);
  hash = fnv1a_value(hash, config.machine.device_memory_bytes);
  hash = fnv1a_value(hash, config.machine.host_sort_fraction);
  hash = fnv1a_value(hash, config.fingerprints.primary.radix);
  hash = fnv1a_value(hash, config.fingerprints.primary.modulus);
  hash = fnv1a_value(hash, config.fingerprints.secondary.radix);
  hash = fnv1a_value(hash, config.fingerprints.secondary.modulus);
  hash = fnv1a_value(hash, config.include_singletons);
  hash = fnv1a_value(hash, config.min_contig_length);
  // Unlike streamed_*/kernel_backend, the graph mode changes the contigs
  // and the checkpoint sidecar layout, so greedy and reduced checkpoints
  // must not interchange.
  hash = fnv1a_value(hash, static_cast<std::uint64_t>(config.graph));
  return hash;
}

}  // namespace lasagna::core
