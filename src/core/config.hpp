// Pipeline configuration: machine shape (host/device memory, GPU profile,
// disk bandwidth), assembly parameters, and the shared per-run workspace.
//
// Scaling rule: the paper runs 398 GB datasets against 64-128 GB hosts and
// 6-12 GB GPUs; the scaled presets divide all three by the same factor so
// that pass counts — the quantity that drives the phase profile — are
// preserved (see DESIGN.md).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "fingerprint/rabin_karp.hpp"
#include "gpu/device.hpp"
#include "gpu/profile.hpp"
#include "io/io_stats.hpp"
#include "util/memory_tracker.hpp"

namespace lasagna::core {

class CheckpointManager;

/// The machine a run models.
struct MachineConfig {
  std::string name = "k40-128";
  std::uint64_t host_memory_bytes = 32ull << 20;    ///< scaled 128 GB
  std::uint64_t device_memory_bytes = 3ull << 20;   ///< scaled 12 GB
  gpu::GpuProfile gpu_profile = gpu::GpuProfile::k40();
  /// Modeled disk bandwidth. The paper's clusters stream 100-500 MB/s per
  /// node; scaled runs keep the ratio of compute to I/O by scaling this
  /// with the memory scale.
  double disk_bandwidth_bytes_per_sec = 500e6 / 4096.0;
  /// The dataset/memory scale factor this machine models. Disk bandwidth
  /// is divided by it (above), which keeps disk time in full-size-world
  /// units; device kernels run on scaled data at *real* GPU rates, so
  /// modeled device seconds are multiplied by this factor to land in the
  /// same units.
  double time_scale = 4096.0;
  /// Modeled host-stage throughput (tuple emission, greedy edge
  /// insertion): streaming small-record updates run well below memcpy
  /// speed on paper-era Xeons; 1 GB/s is a conservative figure. Divided by
  /// the memory scale like disk bandwidth, so modeled host seconds are in
  /// full-size-world units.
  double host_bandwidth_bytes_per_sec = 1e9 / 4096.0;
  /// Fraction of host memory usable as a single sort block m_h (the rest
  /// is double-buffering and pipeline overhead).
  double host_sort_fraction = 0.5;
  /// Per-node NIC cap for the distributed network lane (bytes/second each
  /// direction; the node cannot send or receive faster than this no matter
  /// what the link offers). 0 = uncapped, the pre-topology behaviour.
  /// Scaled like disk bandwidth so modeled seconds stay in full-size-world
  /// units.
  double nic_bandwidth_bytes_per_sec = 0.0;

  /// QueenBee II node: 128 GB host + K40 12 GB (Tables II/IV), divided by
  /// `scale`.
  static MachineConfig queenbee_k40(double scale = 4096.0);
  /// SuperMIC node: 64 GB host + K20X 6 GB (Tables III/V), divided by
  /// `scale`.
  static MachineConfig supermic_k20(double scale = 4096.0);

  static MachineConfig with_gpu(const gpu::GpuProfile& profile,
                                double scale = 4096.0);
};

inline MachineConfig MachineConfig::queenbee_k40(double scale) {
  MachineConfig m;
  m.name = "k40-128";
  m.host_memory_bytes =
      static_cast<std::uint64_t>(128.0 * (1ull << 30) / scale);
  m.device_memory_bytes =
      static_cast<std::uint64_t>(12.0 * (1ull << 30) / scale);
  m.gpu_profile = gpu::GpuProfile::k40();
  m.disk_bandwidth_bytes_per_sec = 500e6 / scale;
  m.host_bandwidth_bytes_per_sec = 1e9 / scale;
  m.nic_bandwidth_bytes_per_sec = 7e9 / scale;  // 56 Gb/s InfiniBand
  m.time_scale = scale;
  return m;
}

inline MachineConfig MachineConfig::supermic_k20(double scale) {
  MachineConfig m;
  m.name = "k20-64";
  m.host_memory_bytes =
      static_cast<std::uint64_t>(64.0 * (1ull << 30) / scale);
  m.device_memory_bytes =
      static_cast<std::uint64_t>(6.0 * (1ull << 30) / scale);
  m.gpu_profile = gpu::GpuProfile::k20x();
  m.disk_bandwidth_bytes_per_sec = 500e6 / scale;
  m.host_bandwidth_bytes_per_sec = 1e9 / scale;
  m.nic_bandwidth_bytes_per_sec = 7e9 / scale;  // 56 Gb/s InfiniBand
  m.time_scale = scale;
  return m;
}

inline MachineConfig MachineConfig::with_gpu(const gpu::GpuProfile& profile,
                                             double scale) {
  MachineConfig m = queenbee_k40(scale);
  m.name = profile.name;
  m.gpu_profile = profile;
  m.device_memory_bytes =
      static_cast<std::uint64_t>(
          static_cast<double>(profile.memory_bytes) / scale);
  return m;
}

/// String-graph construction mode. `kGreedy` is the paper's
/// at-most-one-out-edge greedy graph. `kReduced` keeps the full overlap
/// graph, runs the blocked parallel Myers transitive reduction, and walks
/// the unambiguous unitig links of the reduced graph (arXiv:2010.10055 /
/// arXiv:2207.04350). The mode changes the contigs, so — unlike the
/// streamed_*/backend toggles — it participates in the checkpoint config
/// hash.
enum class GraphMode : std::uint8_t { kGreedy = 0, kReduced = 1 };

[[nodiscard]] inline const char* graph_mode_name(GraphMode mode) {
  return mode == GraphMode::kReduced ? "reduced" : "greedy";
}

/// Assembly parameters.
struct AssemblyConfig {
  MachineConfig machine;
  unsigned min_overlap = 63;  ///< l_min (paper IV-A: SGA-suggested values)
  fingerprint::FingerprintConfig fingerprints =
      fingerprint::FingerprintConfig::standard();
  /// Emit reads with no overlaps as singleton contigs.
  bool include_singletons = false;
  /// Drop contigs shorter than this from the FASTA output (0 = keep all).
  std::uint32_t min_contig_length = 0;
  /// Verify candidate overlaps against the actual sequences and drop
  /// false-positive fingerprint matches (test/diagnostic mode; requires
  /// keeping the packed reads in host memory).
  bool verify_overlaps = false;
  /// Run the sort phase's streamed pipeline (paper's semi-streaming model:
  /// disk I/O overlaps device work, device chunks double-buffer across two
  /// streams). Output is byte-identical either way; only the modeled
  /// timeline and wall-clock overlap change.
  bool streamed_sort = true;
  /// Run the map phase's three-stage software pipeline: background FASTQ
  /// batch prefetch, double-buffered fingerprint kernels, and background
  /// tuple emission. Partition files are byte-identical either way.
  bool streamed_map = true;
  /// Run the reduce phase's streamed pipeline: async window prefetch,
  /// double-buffered bound kernels, and host greedy insertion deferred one
  /// window behind the device. The graph's edge set is identical either
  /// way.
  bool streamed_reduce = true;
  /// Resolve greedy edges with the partitioned speculative resolver
  /// (core::SpeculativeResolver) instead of the serial in-order insertion:
  /// candidates are collected per length-partition, speculatively resolved
  /// per domain, and reconciled to a fixpoint. The edge set — hence the
  /// contigs — is byte-identical to the serial path (and, like the
  /// streamed_* flags, the flag is excluded from the checkpoint config
  /// hash), so checkpoints interchange between modes.
  bool speculative_reduce = false;
  /// Kernel backend for the three hot kernels (fingerprint generation,
  /// match bounds, radix sort): "simulated" (default — the modeled-clock
  /// device), "scalar", "avx2", or "host"/"auto" (fastest available host
  /// path). Contigs are byte-identical with every backend; like the
  /// streamed_* flags the choice is excluded from the checkpoint config
  /// hash, so checkpoints interchange between backends.
  std::string kernel_backend = "simulated";
  /// Graph mode: greedy (default) or reduced (full graph + blocked
  /// parallel transitive reduction + unitig walk). Part of the checkpoint
  /// config hash — reduced-mode intermediates do not interchange with
  /// greedy ones.
  GraphMode graph = GraphMode::kGreedy;
  /// Working directory for intermediate files (empty = fresh temp dir).
  std::filesystem::path work_dir;
  /// Resume from the checkpoint manifest in `work_dir` (if one exists and
  /// matches this run's inputs and parameters): completed phases and
  /// finished sort runs are skipped, and the output is byte-identical to an
  /// uninterrupted run. Requires a persistent `work_dir`; ignored in
  /// verify_overlaps mode (which pins state that cannot be checkpointed).
  bool resume = false;
  /// When set, the greedy string graph is also written here as GFA 1.0
  /// (for Bandage and other graph tooling).
  std::filesystem::path gfa_output;
};

/// Per-run mutable context threaded through the phases. The distributed
/// driver creates one per node (private disk + device); the single-node
/// pipeline creates exactly one.
struct Workspace {
  gpu::Device* device = nullptr;
  util::MemoryTracker* host = nullptr;  ///< host working-memory tracker
  io::IoStats* io = nullptr;            ///< this node's disk counters
  std::filesystem::path dir;            ///< this node's private storage
  /// Checkpoint/restart manager, or nullptr when checkpointing is off
  /// (verify mode, the distributed driver's per-node workspaces).
  CheckpointManager* checkpoint = nullptr;
};

/// On-disk record emitted by the map phase: a 128-bit fingerprint plus the
/// source vertex (read/strand). 24 bytes (the paper's 20-byte tuple plus
/// alignment padding).
struct FpRecord {
  gpu::Key128 fp;
  std::uint32_t vertex = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(FpRecord) == 24);

/// Derived streaming geometry.
struct BlockGeometry {
  std::uint64_t host_block_records = 0;    ///< m_h in records
  std::uint64_t device_block_records = 0;  ///< m_d in records
  /// Streamed execution of the sort phase: prefetch/drain disk blocks on
  /// background threads and double-buffer device chunks across two modeled
  /// streams. The false (synchronous) path produces byte-identical output
  /// with a strictly serial modeled timeline — keep it for comparisons.
  bool streamed = false;

  /// m_h from the host budget; m_d from the device budget. The device sort
  /// needs input + double buffer (2x) plus staging, hence the divisor 4;
  /// see gpu::sort_pairs.
  static BlockGeometry from(const MachineConfig& machine);
};

inline BlockGeometry BlockGeometry::from(const MachineConfig& machine) {
  BlockGeometry g;
  g.host_block_records = std::max<std::uint64_t>(
      16, static_cast<std::uint64_t>(machine.host_sort_fraction *
                                     machine.host_memory_bytes) /
              sizeof(FpRecord));
  g.device_block_records = std::max<std::uint64_t>(
      16, machine.device_memory_bytes / (4 * sizeof(FpRecord)));
  return g;
}

}  // namespace lasagna::core
