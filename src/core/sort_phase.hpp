// Sort phase (paper section III-B): external-memory sort of every
// per-length partition by fingerprint, using the hybrid two-level scheme —
//
//   level 1 (disk <-> host):   host blocks of m_h records are loaded,
//                              sorted, and written back as sorted runs;
//                              runs are then merged pairwise with
//                              Algorithm 1 (window-equalized streaming).
//   level 2 (host <-> device): a host block is sorted by streaming chunks
//                              of m_d records through the device radix
//                              sort, then device-merging them with the
//                              same windowed algorithm in host memory.
//
// The hybrid scheme costs 1 + ceil(log2(n / m_h)) disk passes instead of
// 1 + ceil(log2(n / m_d)) — the paper's "3-4x fewer" disk passes.
//
// With BlockGeometry::streamed the whole phase runs as a software pipeline
// (the paper's semi-streaming claim): host block i+1 prefetches from disk
// while the device sorts block i and sorted run i-1 drains to disk, and
// device chunks double-buffer across two modeled streams. The synchronous
// path (streamed = false) remains the bitwise reference.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/map_phase.hpp"

namespace lasagna::core {

inline bool fp_less(const FpRecord& a, const FpRecord& b) {
  return a.fp < b.fp;
}

/// Sort a host-resident block by streaming device-sized chunks through the
/// GPU (level 2 of the hybrid scheme). In-place, synchronous (default
/// stream).
void sort_host_block(Workspace& ws, std::span<FpRecord> block,
                     std::uint64_t device_block_records);

/// Geometry-aware variant: with `geometry.streamed` the device chunks are
/// double-buffered across two modeled streams (H2D/sort/D2H legs overlap
/// between consecutive chunks; kernels stay serialized through events).
void sort_host_block(Workspace& ws, std::span<FpRecord> block,
                     const BlockGeometry& geometry);

/// Merge two sorted host-resident runs by streaming device-sized windows
/// through the GPU merge; emits output through `sink` in sorted order.
void device_windowed_merge(
    Workspace& ws, std::span<const FpRecord> a, std::span<const FpRecord> b,
    std::uint64_t device_block_records,
    const std::function<void(std::span<const FpRecord>)>& sink);

/// Statistics from sorting one partition file.
struct SortFileStats {
  std::uint64_t records = 0;
  unsigned host_blocks = 0;   ///< level-1 runs produced
  unsigned disk_passes = 0;   ///< full read+write passes over the data
};

/// External-memory sort of one record file (Algorithm 1 at the disk level).
SortFileStats external_sort_file(Workspace& ws,
                                 const std::filesystem::path& input,
                                 const std::filesystem::path& output,
                                 const BlockGeometry& geometry);

/// Streaming entry point into level 1 of the hybrid sort: append records in
/// their on-disk order and the builder forms exactly the runs
/// external_sort_file would — cut at `host_block_records` boundaries,
/// device-sorted with the double-buffered stream pair, and drained to
/// `<output stem>.run<N>` by a background writer while the next block
/// fills. The distributed fused shuffle feeds this straight from arriving
/// network chunks, skipping the staged partition file entirely.
///
/// `device_mutex` (optional) is held around each block's device sort so a
/// builder can share a capacity-limited device with concurrently running
/// kernels (the owner's map phase) without overcommitting device memory.
class SortRunBuilder {
 public:
  SortRunBuilder(Workspace& ws, std::filesystem::path output,
                 const BlockGeometry& geometry,
                 std::mutex* device_mutex = nullptr);
  ~SortRunBuilder();

  SortRunBuilder(const SortRunBuilder&) = delete;
  SortRunBuilder& operator=(const SortRunBuilder&) = delete;

  /// Append records in logical order; sorts and drains a run every time the
  /// buffered block reaches `host_block_records`.
  void append(std::span<const FpRecord> records);

  /// Flush the partial tail block and wait for every run write to land.
  /// Idempotent; called implicitly by the destructor (which swallows
  /// errors — call finish() to observe failures).
  void finish();

  /// Records appended so far.
  [[nodiscard]] std::uint64_t records() const;

  /// Run files produced (valid after finish()).
  [[nodiscard]] const std::vector<std::filesystem::path>& runs() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Level 2 of the hybrid sort as a standalone entry point: pairwise
/// Algorithm-1 merges of already-sorted `runs` until one remains, renamed
/// to `output` (an empty run list writes an empty output). Consumes the run
/// files. The merge tree, scratch names and output bytes are identical to
/// external_sort_file's over the same runs. Returns the full stats with
/// `records` counted from the merged output.
SortFileStats merge_sorted_runs(Workspace& ws,
                                std::vector<std::filesystem::path> runs,
                                const std::filesystem::path& output,
                                const BlockGeometry& geometry);

/// One sorted partition ready for the reduce phase.
struct SortedPartition {
  unsigned length = 0;
  std::filesystem::path suffix_file;
  std::filesystem::path prefix_file;
  std::uint64_t suffix_records = 0;
  std::uint64_t prefix_records = 0;
};

struct SortResult {
  std::vector<SortedPartition> partitions;  ///< ascending length
  std::uint64_t records_sorted = 0;
  unsigned max_disk_passes = 0;
};

/// Sort every partition produced by the map phase; original partition files
/// are deleted as they are consumed.
[[nodiscard]] SortResult run_sort_phase(Workspace& ws, MapResult& map,
                                        const BlockGeometry& geometry);

}  // namespace lasagna::core
