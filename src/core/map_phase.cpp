#include "core/map_phase.hpp"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gpu/stream.hpp"
#include "obs/trace.hpp"
#include "seq/async_batch_stream.hpp"
#include "seq/dna.hpp"
#include "seq/read_store.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace lasagna::core {

namespace {

// The PlaceTable wants the longest read length up front; Illumina reads
// are uniform, so we allocate for the longest supported and slice later.
constexpr unsigned kMaxReadLength = 512;

/// Batch size in *input* bases: each input base occupies two strands
/// (forward + reverse complement) on the device, and each strand base
/// costs 1 byte of codes plus two 16-byte fingerprints; keep 1/8 of the
/// device free for the lengths array and allocator slack.
std::uint64_t batch_bases_for(const gpu::Device& dev) {
  constexpr std::uint64_t per_base = 2 * (1 + 2 * sizeof(gpu::Key128)) + 2;
  const std::uint64_t usable = dev.memory().capacity() * 7 / 8;
  return std::max<std::uint64_t>(64, usable / per_base);
}

/// One batch's payload between the fingerprint stage and the emission
/// stage: everything emission needs, with the strand strings dropped.
struct EmissionJob {
  std::vector<unsigned> lengths;        ///< per strand (2 per read)
  std::vector<std::uint32_t> read_ids;  ///< global id per read
  fingerprint::BatchFingerprints fps;
};

/// Range-filter one input batch and build its interleaved strands (forward
/// at 2i, reverse complement at 2i+1, matching the vertex ids). Returns
/// false when no read of the batch falls in the assigned range.
bool prepare_batch(const seq::ReadBatch& batch, const MapOptions& options,
                   std::vector<std::string>& strands, EmissionJob& job) {
  const std::uint64_t batch_first = batch.first_id;
  strands.clear();
  job.lengths.clear();
  job.read_ids.clear();
  std::vector<std::uint32_t> keep;
  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    const std::uint64_t global_id = batch_first + i;
    if (global_id < options.first_read ||
        global_id >= options.first_read + options.max_reads) {
      continue;
    }
    if (batch.reads[i].size() > std::numeric_limits<std::uint16_t>::max()) {
      // read_lengths stores uint16; a silent cast would corrupt every
      // overhang computed downstream.
      throw std::runtime_error(
          "read " + std::to_string(global_id) + " is " +
          std::to_string(batch.reads[i].size()) +
          " bases; the pipeline supports reads up to 65535 bases");
    }
    keep.push_back(i);
    job.read_ids.push_back(static_cast<std::uint32_t>(global_id));
  }
  if (keep.empty()) return false;

  strands.resize(keep.size() * 2);
  job.lengths.resize(keep.size() * 2);
  util::ThreadPool::global().parallel_for_chunked(
      keep.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::string& read = batch.reads[keep[i]];
          strands[2 * i] = read;
          strands[2 * i + 1] = seq::reverse_complement(read);
          job.lengths[2 * i] = static_cast<unsigned>(read.size());
          job.lengths[2 * i + 1] = static_cast<unsigned>(read.size());
        }
      });
  return true;
}

/// Deterministic parallel tuple emission: the per-strand loop is split into
/// contiguous strand chunks staged independently on the thread pool, then
/// drained to the partition sets chunk-by-chunk in ascending key order.
/// Because chunks are contiguous and drained in order, the bytes appended
/// per partition are the concatenation in global strand order — identical
/// for any chunk count (and therefore any pool size), and identical to the
/// old serial loop.
class TupleEmitter {
 public:
  TupleEmitter(MapResult& result, const MapOptions& options)
      : result_(result),
        options_(options),
        buckets_(std::max(1u, options.fingerprint_buckets)),
        key_limit_(static_cast<std::size_t>(kMaxReadLength) * buckets_) {}

  /// Emit one batch's tuples (runs on the caller's thread; parallel inside).
  void emit(const EmissionJob& job) {
    const std::size_t n = job.lengths.size();
    if (n == 0) return;
    obs::WallSpan span;
    if (obs::Tracer* tracer = obs::Tracer::active()) {
      span = obs::WallSpan(*tracer, tracer->track("host.emit"),
                           "emit:" + std::to_string(job.read_ids.front()),
                           {{"strands", static_cast<std::int64_t>(n)}});
    }
    const std::size_t chunk_count = options_.emission_chunks > 0
                                        ? options_.emission_chunks
                                        : util::ThreadPool::global().size() * 4;
    const std::size_t chunks = std::min(n, std::max<std::size_t>(1, chunk_count));
    const std::size_t step = (n + chunks - 1) / chunks;

    if (stages_.size() < chunks) stages_.resize(chunks);
    for (std::size_t c = 0; c < chunks; ++c) stages_[c].reset(key_limit_);

    if (result_.read_lengths.size() <= job.read_ids.back()) {
      result_.read_lengths.resize(job.read_ids.back() + 1, 0);
    }

    util::ThreadPool::global().parallel_for_chunked(
        chunks, [&](std::size_t cb, std::size_t ce) {
          for (std::size_t c = cb; c < ce; ++c) {
            stage_chunk(job, c * step, std::min(n, c * step + step),
                        stages_[c]);
          }
        });

    // Deterministic drain: ascending key, then ascending chunk.
    for (std::size_t key = 0; key < key_limit_; ++key) {
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto& sfx = stages_[c].sfx[key];
        if (!sfx.empty()) {
          result_.suffixes->append(static_cast<unsigned>(key),
                                   std::span<const FpRecord>(sfx));
        }
      }
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto& pfx = stages_[c].pfx[key];
        if (!pfx.empty()) {
          result_.prefixes->append(static_cast<unsigned>(key),
                                   std::span<const FpRecord>(pfx));
        }
      }
    }
    for (std::size_t c = 0; c < chunks; ++c) {
      result_.tuples_emitted += stages_[c].tuples;
      result_.total_bases += stages_[c].bases;
      result_.max_read_length =
          std::max(result_.max_read_length, stages_[c].max_length);
    }
    result_.read_count += static_cast<std::uint32_t>(job.read_ids.size());
  }

 private:
  /// Flat indexed-by-partition-key staging for one strand chunk (replaces
  /// the old std::map<unsigned, std::vector<FpRecord>>: partition keys are
  /// dense in [0, kMaxReadLength * buckets), so direct indexing beats the
  /// tree on every lookup of the hot emission loop). Vectors keep their
  /// capacity across batches.
  struct ChunkStage {
    std::vector<std::vector<FpRecord>> sfx;
    std::vector<std::vector<FpRecord>> pfx;
    std::uint64_t tuples = 0;
    std::uint64_t bases = 0;
    unsigned max_length = 0;

    void reset(std::size_t key_limit) {
      sfx.resize(key_limit);
      pfx.resize(key_limit);
      for (auto& v : sfx) v.clear();
      for (auto& v : pfx) v.clear();
      tuples = 0;
      bases = 0;
      max_length = 0;
    }
  };

  void stage_chunk(const EmissionJob& job, std::size_t begin, std::size_t end,
                   ChunkStage& stage) {
    for (std::size_t s = begin; s < end; ++s) {
      const unsigned len = job.lengths[s];
      const std::uint32_t read_id = job.read_ids[s / 2];
      const std::uint32_t vertex =
          (read_id << 1) | static_cast<std::uint32_t>(s & 1);
      const gpu::Key128* prefix_row =
          job.fps.prefix.data() + s * job.fps.stride;
      const gpu::Key128* suffix_row =
          job.fps.suffix.data() + s * job.fps.stride;

      // Keep overlap lengths l in [l_min, len): the l = len partition is
      // dropped to avoid self-loops (paper III-A).
      for (unsigned l = options_.min_overlap; l < len; ++l) {
        const gpu::Key128 pfp = prefix_row[l - 1];
        const gpu::Key128 sfp = suffix_row[len - l];
        stage.pfx[partition_key(
                      l, static_cast<unsigned>(pfp.hi % buckets_), buckets_)]
            .push_back(FpRecord{pfp, vertex, 0});
        stage.sfx[partition_key(
                      l, static_cast<unsigned>(sfp.hi % buckets_), buckets_)]
            .push_back(FpRecord{sfp, vertex, 0});
        stage.tuples += 2;
      }
      stage.max_length = std::max(stage.max_length, len);
      stage.bases += len;
      if ((s & 1) == 0) {
        // Chunks cover disjoint strand ranges, so each read's slot is
        // written by exactly one chunk.
        result_.read_lengths[read_id] = static_cast<std::uint16_t>(len);
      }
    }
  }

  MapResult& result_;
  const MapOptions& options_;
  unsigned buckets_;
  std::size_t key_limit_;
  std::vector<ChunkStage> stages_;
};

/// Background drain stage of the streamed map pipeline: one emission job in
/// flight while the device fingerprints the next batch. Jobs are processed
/// strictly FIFO, so partition appends happen in batch order — identical to
/// the synchronous path. Failures surface on the next submit() or finish().
class EmitWorker {
 public:
  explicit EmitWorker(TupleEmitter& emitter)
      : emitter_(emitter), worker_([this] { run(); }) {}

  ~EmitWorker() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  void submit(EmissionJob job) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !job_.has_value() || error_ != nullptr; });
    if (error_ != nullptr) std::rethrow_exception(error_);
    job_.emplace(std::move(job));
    cv_.notify_all();
  }

  /// Wait for the queue to drain and the worker to exit; rethrows failures.
  void finish() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
      return (!job_.has_value() && !busy_) || error_ != nullptr;
    });
    stop_ = true;
    cv_.notify_all();
    lock.unlock();
    if (worker_.joinable()) worker_.join();
    if (error_ != nullptr) std::rethrow_exception(error_);
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      cv_.wait(lock, [this] { return job_.has_value() || stop_; });
      if (!job_.has_value()) return;  // stop requested, queue empty
      EmissionJob job = std::move(*job_);
      job_.reset();
      busy_ = true;
      cv_.notify_all();
      lock.unlock();
      try {
        emitter_.emit(job);
      } catch (...) {
        lock.lock();
        error_ = std::current_exception();
        busy_ = false;
        cv_.notify_all();
        return;
      }
      lock.lock();
      busy_ = false;
      cv_.notify_all();
    }
  }

  TupleEmitter& emitter_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<EmissionJob> job_;
  bool busy_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
  std::thread worker_;
};

}  // namespace

MapResult run_map_phase(Workspace& ws,
                        const std::vector<std::filesystem::path>& fastqs,
                        const MapOptions& options) {
  MapResult result;
  result.suffixes = std::make_unique<io::PartitionSet<FpRecord>>(
      ws.dir / "map", "sfx", *ws.io);
  result.prefixes = std::make_unique<io::PartitionSet<FpRecord>>(
      ws.dir / "map", "pfx", *ws.io);

  const fingerprint::PlaceTable places(options.fingerprints, kMaxReadLength);
  const std::uint64_t batch_bases = batch_bases_for(*ws.device);
  TupleEmitter emitter(result, options);
  gpu::StreamPair streams(*ws.device, options.streamed);

  std::vector<std::string> strands;
  seq::ReadBatch batch;

  auto fingerprint_batch = [&](EmissionJob& job) {
    obs::WallSpan span;
    if (obs::Tracer* tracer = obs::Tracer::active()) {
      span = obs::WallSpan(
          *tracer, tracer->track("core.map"),
          "batch:" + std::to_string(job.read_ids.front()),
          {{"strands", static_cast<std::int64_t>(job.lengths.size())}});
    }
    util::TrackedAllocation strand_mem(
        *ws.host, strands.size() * (strands.front().size() + 32));
    job.fps = fingerprint::compute_batch_fingerprints(
        *ws.device, strands, places, options.strategy,
        options.streamed ? &streams : nullptr);
  };

  if (options.streamed) {
    // Three-stage software pipeline: the background stream decodes batch
    // i+1 while the device fingerprints batch i (double-buffered across the
    // stream pair) and the emit worker drains batch i-1's tuples to the
    // partition files — so at steady state disk input, device compute and
    // partition output all overlap (paper Fig 8 across the map phase).
    seq::AsyncReadBatchStream stream(fastqs, batch_bases);
    EmitWorker worker(emitter);
    while (stream.next(batch)) {
      const std::uint64_t batch_first = batch.first_id;
      if (batch_first + batch.size() <= options.first_read) continue;
      if (options.max_reads != UINT64_MAX &&
          batch_first >= options.first_read + options.max_reads) {
        break;
      }
      EmissionJob job;
      if (!prepare_batch(batch, options, strands, job)) continue;
      fingerprint_batch(job);
      util::TrackedAllocation fp_mem(
          *ws.host, (job.fps.prefix.size() + job.fps.suffix.size()) *
                        sizeof(gpu::Key128));
      worker.submit(std::move(job));
    }
    worker.finish();
  } else {
    seq::ReadBatchStream stream(fastqs, batch_bases);
    while (stream.next(batch)) {
      const std::uint64_t batch_first = batch.first_id;
      if (batch_first + batch.size() <= options.first_read) continue;
      if (options.max_reads != UINT64_MAX &&
          batch_first >= options.first_read + options.max_reads) {
        break;
      }
      EmissionJob job;
      if (!prepare_batch(batch, options, strands, job)) continue;
      fingerprint_batch(job);
      util::TrackedAllocation fp_mem(
          *ws.host, (job.fps.prefix.size() + job.fps.suffix.size()) *
                        sizeof(gpu::Key128));
      emitter.emit(job);
    }
  }

  // total_bases counted both strands; report input bases (one strand).
  result.total_bases /= 2;
  // Host emission stage: every tuple is staged once and appended once.
  result.host_bytes = result.tuples_emitted * sizeof(FpRecord);
  result.suffixes->finalize();
  result.prefixes->finalize();
  LOG_INFO << "map: " << result.read_count << " reads, "
           << result.tuples_emitted << " tuples";
  return result;
}

}  // namespace lasagna::core
