#include "core/map_phase.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "seq/dna.hpp"
#include "seq/read_store.hpp"
#include "util/logging.hpp"

namespace lasagna::core {

namespace {

/// Batch size in *input* bases: each input base occupies two strands
/// (forward + reverse complement) on the device, and each strand base
/// costs 1 byte of codes plus two 16-byte fingerprints; keep 1/8 of the
/// device free for the lengths array and allocator slack.
std::uint64_t batch_bases_for(const gpu::Device& dev) {
  constexpr std::uint64_t per_base = 2 * (1 + 2 * sizeof(gpu::Key128)) + 2;
  const std::uint64_t usable = dev.memory().capacity() * 7 / 8;
  return std::max<std::uint64_t>(64, usable / per_base);
}

}  // namespace

MapResult run_map_phase(Workspace& ws,
                        const std::vector<std::filesystem::path>& fastqs,
                        const MapOptions& options) {
  MapResult result;
  result.suffixes = std::make_unique<io::PartitionSet<FpRecord>>(
      ws.dir / "map", "sfx", *ws.io);
  result.prefixes = std::make_unique<io::PartitionSet<FpRecord>>(
      ws.dir / "map", "pfx", *ws.io);

  // The PlaceTable wants the longest read length up front; Illumina reads
  // are uniform, so we allocate for the longest supported and slice later.
  constexpr unsigned kMaxReadLength = 512;
  const fingerprint::PlaceTable places(options.fingerprints, kMaxReadLength);

  const std::uint64_t batch_bases = batch_bases_for(*ws.device);
  seq::ReadBatchStream stream(fastqs, batch_bases);

  // Per-length staging buffers flushed after every batch.
  std::map<unsigned, std::vector<FpRecord>> sfx_stage;
  std::map<unsigned, std::vector<FpRecord>> pfx_stage;

  seq::ReadBatch batch;
  std::vector<std::string> strands;
  while (stream.next(batch)) {
    // Skip batches before the assigned range; stop after it (distributed
    // map: the master assigns [first_read, first_read + max_reads)).
    const std::uint64_t batch_first = batch.first_id;
    const std::uint64_t batch_last = batch_first + batch.size();
    if (batch_last <= options.first_read) continue;
    if (options.max_reads != UINT64_MAX &&
        batch_first >= options.first_read + options.max_reads) {
      break;
    }

    // Forward and reverse-complement strands interleaved: strand of read i
    // sits at 2i (forward) and 2i+1 (reverse), matching the vertex ids.
    strands.clear();
    strands.reserve(batch.reads.size() * 2);
    std::vector<std::uint32_t> read_ids;
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      const std::uint64_t global_id = batch_first + i;
      if (global_id < options.first_read ||
          global_id >= options.first_read + options.max_reads) {
        continue;
      }
      if (batch.reads[i].size() > std::numeric_limits<std::uint16_t>::max()) {
        // read_lengths stores uint16; a silent cast would corrupt every
        // overhang computed downstream.
        throw std::runtime_error(
            "read " + std::to_string(global_id) + " is " +
            std::to_string(batch.reads[i].size()) +
            " bases; the pipeline supports reads up to 65535 bases");
      }
      strands.push_back(batch.reads[i]);
      strands.push_back(seq::reverse_complement(batch.reads[i]));
      read_ids.push_back(static_cast<std::uint32_t>(global_id));
    }
    if (strands.empty()) continue;

    util::TrackedAllocation strand_mem(
        *ws.host, strands.size() * (strands.front().size() + 32));

    const fingerprint::BatchFingerprints fps =
        fingerprint::compute_batch_fingerprints(*ws.device, strands, places,
                                                options.strategy);

    util::TrackedAllocation fp_mem(
        *ws.host, (fps.prefix.size() + fps.suffix.size()) *
                      sizeof(gpu::Key128));

    for (std::size_t s = 0; s < strands.size(); ++s) {
      const unsigned len = static_cast<unsigned>(strands[s].size());
      const std::uint32_t read_id = read_ids[s / 2];
      const std::uint32_t vertex =
          (read_id << 1) | static_cast<std::uint32_t>(s & 1);
      const gpu::Key128* prefix_row = fps.prefix.data() + s * fps.stride;
      const gpu::Key128* suffix_row = fps.suffix.data() + s * fps.stride;

      // Keep overlap lengths l in [l_min, len): the l = len partition is
      // dropped to avoid self-loops (paper III-A).
      const unsigned buckets = std::max(1u, options.fingerprint_buckets);
      for (unsigned l = options.min_overlap; l < len; ++l) {
        const gpu::Key128 pfp = prefix_row[l - 1];
        const gpu::Key128 sfp = suffix_row[len - l];
        pfx_stage[partition_key(
                      l, static_cast<unsigned>(pfp.hi % buckets), buckets)]
            .push_back(FpRecord{pfp, vertex, 0});
        sfx_stage[partition_key(
                      l, static_cast<unsigned>(sfp.hi % buckets), buckets)]
            .push_back(FpRecord{sfp, vertex, 0});
        result.tuples_emitted += 2;
      }
      result.max_read_length = std::max(result.max_read_length, len);
      result.total_bases += len;
      if ((s & 1) == 0) {
        if (result.read_lengths.size() <= read_id) {
          result.read_lengths.resize(read_id + 1, 0);
        }
        result.read_lengths[read_id] = static_cast<std::uint16_t>(len);
      }
    }
    result.read_count += static_cast<std::uint32_t>(read_ids.size());

    for (auto& [l, records] : sfx_stage) {
      if (!records.empty()) {
        result.suffixes->append(l, std::span<const FpRecord>(records));
        records.clear();
      }
    }
    for (auto& [l, records] : pfx_stage) {
      if (!records.empty()) {
        result.prefixes->append(l, std::span<const FpRecord>(records));
        records.clear();
      }
    }
  }

  // total_bases counted both strands; report input bases (one strand).
  result.total_bases /= 2;
  result.suffixes->finalize();
  result.prefixes->finalize();
  LOG_INFO << "map: " << result.read_count << " reads, "
           << result.tuples_emitted << " tuples";
  return result;
}

}  // namespace lasagna::core
