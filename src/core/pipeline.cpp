#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/spec_resolve.hpp"
#include "graph/gfa.hpp"
#include "graph/transitive.hpp"
#include "io/record_stream.hpp"
#include "kernel/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "seq/read_store.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lasagna::core {

namespace {

/// Collects one phase's deltas: wall clock, device modeled clock, disk
/// counters, host-stage time and memory peaks. Overlapped phases (the
/// streamed map/sort/reduce) run disk I/O, device work and the host stage
/// concurrently, so their modeled time is max(device, disk, host) instead
/// of the serial sum.
class PhaseScope {
 public:
  PhaseScope(std::string name, Workspace& ws, const MachineConfig& machine,
             util::RunStats& stats, double extra_input_bytes = 0.0,
             bool overlapped = false)
      : name_(std::move(name)),
        ws_(ws),
        machine_(machine),
        stats_(stats),
        extra_input_bytes_(extra_input_bytes),
        overlapped_(overlapped),
        io_before_(ws.io->snapshot()),
        device_before_(ws.device->modeled_seconds()),
        counters_before_(obs::MetricsRegistry::global().counters_snapshot()),
        run_modeled_before_(stats.total_modeled_seconds()) {
    ws.host->reset_peak();
    ws.device->memory().reset_peak();
    if (obs::Tracer* tracer = obs::Tracer::active()) {
      wall_span_ =
          obs::WallSpan(*tracer, tracer->track("phase"), "phase:" + name_);
    }
  }

  /// The phase was restored from a checkpoint rather than executed.
  void mark_resumed() { resumed_ = true; }

  /// Report the bytes the phase pushed through its host stage (tuple
  /// emission, greedy edge insertion); they are charged at the machine's
  /// modeled host bandwidth, which — like disk bandwidth — is already
  /// expressed in full-size-world units.
  void set_host_bytes(std::uint64_t bytes) { host_bytes_ = bytes; }

  ~PhaseScope() {
    util::PhaseStats phase;
    phase.name = name_;
    phase.resumed = resumed_;
    phase.wall_seconds = timer_.seconds();
    const auto io_after = ws_.io->snapshot();
    phase.disk_bytes_read =
        io_after.bytes_read - io_before_.bytes_read +
        static_cast<std::uint64_t>(extra_input_bytes_);
    phase.disk_bytes_written =
        io_after.bytes_written - io_before_.bytes_written;
    phase.peak_host_bytes = ws_.host->peak();
    phase.peak_device_bytes = ws_.device->memory().peak();
    // Device kernels process scaled data at real GPU rates; multiplying by
    // time_scale expresses them in the same full-size-world units as the
    // (bandwidth-scaled) disk time.
    phase.device_seconds =
        (ws_.device->modeled_seconds() - device_before_) *
        machine_.time_scale;
    phase.disk_seconds =
        static_cast<double>(phase.disk_bytes_read +
                            phase.disk_bytes_written) /
        machine_.disk_bandwidth_bytes_per_sec;
    phase.host_seconds = static_cast<double>(host_bytes_) /
                         machine_.host_bandwidth_bytes_per_sec;
    phase.modeled_seconds =
        overlapped_
            ? std::max({phase.device_seconds, phase.disk_seconds,
                        phase.host_seconds})
            : phase.device_seconds + phase.disk_seconds + phase.host_seconds;
    phase.overlap_efficiency =
        phase.modeled_seconds > 0.0
            ? (phase.device_seconds + phase.disk_seconds +
               phase.host_seconds) /
                  phase.modeled_seconds
            : 1.0;
    phase.faults_injected =
        io_after.faults_injected - io_before_.faults_injected;
    phase.faults_retried =
        io_after.faults_retried - io_before_.faults_retried;
    phase.faults_fatal = io_after.faults_fatal - io_before_.faults_fatal;
    phase.metrics = obs::snapshot_delta(
        counters_before_, obs::MetricsRegistry::global().counters_snapshot());
    trace_lanes(phase);
    stats_.add(std::move(phase));
  }

 private:
  /// Emit the phase's modeled lane spans: each lane ("lane.device" /
  /// "lane.disk" / "lane.host") gets one span named after the phase, placed
  /// on the run's cumulative modeled timeline. Overlapped phases run all
  /// lanes concurrently from the phase start; serial phases chain them —
  /// so the trace *shows* what overlap_efficiency summarizes. Lane times
  /// derive from byte counts and the deterministic device clock, hence
  /// these spans are part of the byte-identical modeled export.
  void trace_lanes(const util::PhaseStats& phase) const {
    obs::Tracer* tracer = obs::Tracer::active();
    if (tracer == nullptr) return;
    const auto ps = [](double seconds) {
      return static_cast<std::int64_t>(std::llround(seconds * 1e12));
    };
    const std::int64_t base = ps(run_modeled_before_);
    tracer->add_span(tracer->track("phases"), phase.name, -1, 0, base,
                     ps(phase.modeled_seconds),
                     {{"resumed", phase.resumed ? 1 : 0}});
    std::int64_t cursor = base;
    const std::pair<const char*, double> lanes[] = {
        {"lane.device", phase.device_seconds},
        {"lane.disk", phase.disk_seconds},
        {"lane.host", phase.host_seconds}};
    for (const auto& [track, seconds] : lanes) {
      if (seconds <= 0.0) continue;
      tracer->add_span(tracer->track(track), phase.name, -1, 0,
                       overlapped_ ? base : cursor, ps(seconds));
      if (!overlapped_) cursor += ps(seconds);
    }
  }

  std::string name_;
  Workspace& ws_;
  const MachineConfig& machine_;
  util::RunStats& stats_;
  double extra_input_bytes_;
  bool overlapped_;
  std::uint64_t host_bytes_ = 0;
  bool resumed_ = false;
  io::IoStats::Snapshot io_before_;
  double device_before_;
  obs::MetricsRegistry::Snapshot counters_before_;
  double run_modeled_before_;
  obs::WallSpan wall_span_;
  util::WallTimer timer_;
};

// ---- checkpoint key helpers (zero-padded so lexicographic == numeric) ----

std::string load_key(std::size_t file_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "load:file:%05zu", file_index);
  return buf;
}

std::string map_key(const char* role, unsigned length) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "map:%s:%05u", role, length);
  return buf;
}

bool file_has_size(const std::filesystem::path& path, std::uint64_t size) {
  std::error_code ec;
  const std::uintmax_t actual = std::filesystem::file_size(path, ec);
  return !ec && actual == size;
}

// ---- map phase restore ---------------------------------------------------

struct MapRestorePlan {
  bool ok = false;
  std::map<unsigned, std::uint64_t> suffix_counts;
  std::map<unsigned, std::uint64_t> prefix_counts;
};

/// Metadata-only validation that the recorded map phase is restorable: the
/// read-length sidecar has the right size and every recorded partition is
/// either intact on disk or already consumed by a *finished* sort of it
/// (its `sort:file` entry exists — the records live in the sorted output).
MapRestorePlan plan_map_restore(const CheckpointManager& cm,
                                const std::filesystem::path& work_dir) {
  MapRestorePlan plan;
  if (!cm.has("phase:map")) return plan;
  const std::uint64_t read_count = cm.counter("phase:map", "read_count");
  if (!file_has_size(cm.sidecar("read_lengths.bin"),
                     read_count * sizeof(std::uint16_t))) {
    return plan;
  }

  const std::filesystem::path map_dir = work_dir / "map";
  for (const char* role : {"sfx", "pfx"}) {
    auto& counts = role[0] == 's' ? plan.suffix_counts : plan.prefix_counts;
    const std::string prefix = std::string("map:") + role + ":";
    for (const std::string& key : cm.keys_with_prefix(prefix)) {
      const auto length =
          static_cast<unsigned>(std::stoul(key.substr(prefix.size())));
      const std::uint64_t records = cm.counter(key, "records");
      char name[64];
      std::snprintf(name, sizeof(name), "%s_%05u.bin", role, length);
      if (!file_has_size(map_dir / name, records * sizeof(FpRecord))) {
        std::snprintf(name, sizeof(name), "sort:file:%s_%05u.sorted", role,
                      length);
        if (!cm.has(name)) return plan;  // partition lost before its sort
      }
      counts[length] = records;
    }
  }
  plan.ok = true;
  return plan;
}

MapResult restore_map(Workspace& ws, const CheckpointManager& cm,
                      const MapRestorePlan& plan) {
  MapResult map;
  map.read_count =
      static_cast<std::uint32_t>(cm.counter("phase:map", "read_count"));
  map.total_bases = cm.counter("phase:map", "total_bases");
  map.tuples_emitted = cm.counter("phase:map", "tuples_emitted");
  map.max_read_length =
      static_cast<unsigned>(cm.counter("phase:map", "max_read_length"));
  map.read_lengths = io::read_all_records<std::uint16_t>(
      cm.sidecar("read_lengths.bin"), *ws.io);
  if (map.read_lengths.size() != map.read_count) {
    throw std::runtime_error("checkpoint read_lengths sidecar corrupt");
  }
  map.suffixes = std::make_unique<io::PartitionSet<FpRecord>>(
      ws.dir / "map", "sfx", *ws.io);
  map.suffixes->restore_finalized(plan.suffix_counts);
  map.prefixes = std::make_unique<io::PartitionSet<FpRecord>>(
      ws.dir / "map", "pfx", *ws.io);
  map.prefixes->restore_finalized(plan.prefix_counts);
  return map;
}

void record_map_checkpoint(Workspace& ws, CheckpointManager& cm,
                           const MapResult& map) {
  io::write_all_records<std::uint16_t>(
      cm.sidecar("read_lengths.bin"),
      std::span<const std::uint16_t>(map.read_lengths), *ws.io);
  for (unsigned length : map.suffixes->lengths()) {
    cm.record(map_key("sfx", length),
              {{"records", map.suffixes->count(length)}});
  }
  for (unsigned length : map.prefixes->lengths()) {
    cm.record(map_key("pfx", length),
              {{"records", map.prefixes->count(length)}});
  }
  cm.record("phase:map", {{"read_count", map.read_count},
                          {"total_bases", map.total_bases},
                          {"tuples_emitted", map.tuples_emitted},
                          {"max_read_length", map.max_read_length}});
}

// ---- sort phase restore --------------------------------------------------

/// Rebuild a completed sort phase's SortResult from `sort:part` entries,
/// validating every sorted file's size. Returns ok=false (and an empty
/// result) on any mismatch — the caller then re-runs the phase, which skips
/// per-file via the finer-grained `sort:file` / `sort:run` entries anyway.
struct SortRestorePlan {
  bool ok = false;
  SortResult result;
};

SortRestorePlan plan_sort_restore(const CheckpointManager& cm,
                                  const std::filesystem::path& work_dir) {
  SortRestorePlan plan;
  if (!cm.has("phase:sort")) return plan;
  const std::filesystem::path sorted_dir = work_dir / "sorted";
  const std::string prefix = "sort:part:";
  for (const std::string& key : cm.keys_with_prefix(prefix)) {
    SortedPartition part;
    part.length =
        static_cast<unsigned>(std::stoul(key.substr(prefix.size())));
    part.suffix_records = cm.counter(key, "suffix_records");
    part.prefix_records = cm.counter(key, "prefix_records");
    char name[64];
    std::snprintf(name, sizeof(name), "sfx_%05u.sorted", part.length);
    part.suffix_file = sorted_dir / name;
    std::snprintf(name, sizeof(name), "pfx_%05u.sorted", part.length);
    part.prefix_file = sorted_dir / name;
    if (!file_has_size(part.suffix_file,
                       part.suffix_records * sizeof(FpRecord)) ||
        !file_has_size(part.prefix_file,
                       part.prefix_records * sizeof(FpRecord))) {
      return SortRestorePlan{};
    }
    plan.result.partitions.push_back(std::move(part));
  }
  plan.result.records_sorted = cm.counter("phase:sort", "records_sorted");
  plan.result.max_disk_passes =
      static_cast<unsigned>(cm.counter("phase:sort", "max_disk_passes"));
  plan.ok = true;
  return plan;
}

}  // namespace

Assembler::Assembler(AssemblyConfig config) : config_(std::move(config)) {}

AssemblyResult Assembler::run(const std::filesystem::path& fastq,
                              const std::filesystem::path& output_fasta) {
  return run(std::vector<std::filesystem::path>{fastq}, output_fasta);
}

AssemblyResult Assembler::run(
    const std::vector<std::filesystem::path>& fastqs,
    const std::filesystem::path& output_fasta) {
  AssemblyResult result;

  device_ = std::make_unique<gpu::Device>(
      config_.machine.gpu_profile, config_.machine.device_memory_bytes);
  // Route the hot kernels (fingerprint / match bounds / radix sort)
  // through the configured backend for the whole run; logs one line with
  // the selection and detected CPU features.
  kernel::ScopedBackend kernel_scope(
      kernel::resolve_backend(config_.kernel_backend));
  util::MemoryTracker host_tracker("host", 0);
  io::IoStats io_stats;

  std::optional<io::ScopedTempDir> temp;
  std::filesystem::path work = config_.work_dir;
  if (work.empty()) {
    temp.emplace("lasagna-run");
    work = temp->path();
  } else {
    std::filesystem::create_directories(work);
  }

  Workspace ws{device_.get(), &host_tracker, &io_stats, work};

  // Checkpointing needs a persistent workspace, and verify mode pins the
  // packed reads in memory — state a restart cannot restore.
  std::unique_ptr<CheckpointManager> checkpoint;
  bool resumable = false;
  if (!config_.work_dir.empty() && !config_.verify_overlaps) {
    checkpoint = std::make_unique<CheckpointManager>(
        work, CheckpointManager::fingerprint_inputs(fastqs),
        hash_assembly_config(config_));
    resumable = config_.resume && checkpoint->load();
    if (!resumable) checkpoint->reset();
    ws.checkpoint = checkpoint.get();
  }
  CheckpointManager* cm = checkpoint.get();

  double fastq_bytes = 0.0;
  for (const auto& f : fastqs) {
    fastq_bytes += static_cast<double>(std::filesystem::file_size(f));
  }

  // ---- Load: one pass over the input to validate it and (in verify mode)
  // pin the packed reads in host memory. Checkpointed per input file, so a
  // resumed run only re-streams files the crashed run never finished.
  std::optional<seq::PackedReads> packed;
  {
    std::vector<bool> file_done(fastqs.size(), false);
    double pending_bytes = 0.0;
    for (std::size_t i = 0; i < fastqs.size(); ++i) {
      if (resumable && cm->has(load_key(i))) {
        file_done[i] = true;
      } else {
        pending_bytes +=
            static_cast<double>(std::filesystem::file_size(fastqs[i]));
      }
    }

    PhaseScope scope("load", ws, config_.machine, result.stats,
                     pending_bytes);
    if (config_.verify_overlaps) {
      packed.emplace(seq::PackedReads::from_files(fastqs));
      host_tracker.allocate(packed->memory_bytes());
    } else {
      std::uint64_t reads = 0;
      bool any_skipped = false;
      for (std::size_t i = 0; i < fastqs.size(); ++i) {
        if (file_done[i]) {
          reads += cm->counter(load_key(i), "reads");
          any_skipped = true;
          continue;
        }
        seq::ReadBatchStream stream(fastqs[i], 1 << 20);
        seq::ReadBatch batch;
        while (stream.next(batch)) {
        }
        reads += stream.reads_seen();
        if (cm != nullptr) {
          cm->record(load_key(i), {{"reads", stream.reads_seen()}});
        }
      }
      result.read_count = static_cast<std::uint32_t>(reads);
      if (any_skipped && pending_bytes == 0.0) {
        scope.mark_resumed();
        ++result.phases_resumed;
      }
      if (cm != nullptr) cm->record("phase:load", {{"read_count", reads}});
    }
  }

  // ---- Map.
  MapOptions map_options;
  map_options.min_overlap = config_.min_overlap;
  map_options.fingerprints = config_.fingerprints;
  map_options.streamed = config_.streamed_map;
  MapResult map;
  {
    MapRestorePlan plan;
    if (resumable) plan = plan_map_restore(*cm, work);
    PhaseScope scope("map", ws, config_.machine, result.stats,
                     plan.ok ? 0.0 : fastq_bytes,
                     /*overlapped=*/config_.streamed_map && !plan.ok);
    if (plan.ok) {
      map = restore_map(ws, *cm, plan);
      scope.mark_resumed();
      ++result.phases_resumed;
    } else {
      map = run_map_phase(ws, fastqs, map_options);
      scope.set_host_bytes(map.host_bytes);
      if (cm != nullptr) record_map_checkpoint(ws, *cm, map);
    }
  }
  result.read_count = map.read_count;
  result.total_bases = map.total_bases;
  result.tuples_emitted = map.tuples_emitted;

  // ---- Sort.
  BlockGeometry geometry = BlockGeometry::from(config_.machine);
  geometry.streamed = config_.streamed_sort;
  SortResult sorted;
  {
    SortRestorePlan plan;
    if (resumable) plan = plan_sort_restore(*cm, work);
    PhaseScope scope("sort", ws, config_.machine, result.stats,
                     /*extra_input_bytes=*/0.0,
                     /*overlapped=*/config_.streamed_sort && !plan.ok);
    if (plan.ok) {
      sorted = std::move(plan.result);
      scope.mark_resumed();
      ++result.phases_resumed;
    } else {
      sorted = run_sort_phase(ws, map, geometry);
      if (cm != nullptr) {
        cm->record("phase:sort",
                   {{"records_sorted", sorted.records_sorted},
                    {"max_disk_passes", sorted.max_disk_passes}});
      }
    }
  }
  result.records_sorted = sorted.records_sorted;
  result.sort_disk_passes = sorted.max_disk_passes;

  // ---- Reduce.
  ReduceOptions reduce_options;
  reduce_options.verify_overlaps = config_.verify_overlaps;
  reduce_options.reads = packed.has_value() ? &*packed : nullptr;
  reduce_options.streamed = config_.streamed_reduce;
  ReduceResult reduced;
  std::unique_ptr<graph::FullStringGraph> full;  // reduced graph mode only
  bool reduction_restored = false;
  {
    bool restorable = false;
    if (config_.graph == GraphMode::kReduced) {
      // Reduced mode checkpoints the *full* overlap graph after the scan
      // (full_graph.bin) and the unitig graph after the reduction phase
      // (reduced_graph.bin). Either sidecar makes the scan restorable; the
      // reduction phase below re-runs unless the second one is intact.
      if (resumable && cm->has("phase:reduction")) {
        reduction_restored = file_has_size(
            cm->sidecar("reduced_graph.bin"),
            cm->counter("phase:reduction", "graph_edges") *
                sizeof(graph::Edge));
      }
      bool full_restorable = false;
      if (resumable && !reduction_restored && cm->has("phase:reduce")) {
        full_restorable = file_has_size(
            cm->sidecar("full_graph.bin"),
            cm->counter("phase:reduce", "full_edges") * sizeof(graph::Edge));
      }
      restorable = reduction_restored || full_restorable;
    } else if (resumable && cm->has("phase:reduce")) {
      restorable = file_has_size(
          cm->sidecar("graph.bin"),
          cm->counter("phase:reduce", "graph_edges") * sizeof(graph::Edge));
    }
    PhaseScope scope("reduce", ws, config_.machine, result.stats,
                     /*extra_input_bytes=*/0.0,
                     /*overlapped=*/config_.streamed_reduce && !restorable);
    if (restorable && config_.graph == GraphMode::kReduced) {
      reduced.candidate_edges = cm->counter("phase:reduce", "candidate_edges");
      reduced.false_positives =
          cm->counter("phase:reduce", "false_positives");
      if (!reduction_restored) {
        const std::vector<std::uint32_t> lengths32(map.read_lengths.begin(),
                                                   map.read_lengths.end());
        full = std::make_unique<graph::FullStringGraph>(map.read_count,
                                                        lengths32);
        full->import_edges(io::read_all_records<graph::Edge>(
            cm->sidecar("full_graph.bin"), *ws.io));
      }
      scope.mark_resumed();
      ++result.phases_resumed;
    } else if (restorable) {
      const auto edges =
          io::read_all_records<graph::Edge>(cm->sidecar("graph.bin"),
                                            *ws.io);
      reduced.graph = std::make_unique<graph::StringGraph>(map.read_count);
      reduced.graph->import_edges(edges);
      reduced.candidate_edges = cm->counter("phase:reduce", "candidate_edges");
      reduced.accepted_edges = cm->counter("phase:reduce", "accepted_edges");
      reduced.false_positives =
          cm->counter("phase:reduce", "false_positives");
      scope.mark_resumed();
      ++result.phases_resumed;
    } else if (config_.graph == GraphMode::kReduced) {
      // Full-graph collection: the scan delivers every candidate through
      // the sink (canonical offer order) into the full string graph
      // instead of the greedy insertion; the blocked transitive reduction
      // and the unitig walk run as their own phase below. Takes precedence
      // over speculative_reduce — there is no greedy edge set to resolve.
      const std::vector<std::uint32_t> lengths32(map.read_lengths.begin(),
                                                 map.read_lengths.end());
      full =
          std::make_unique<graph::FullStringGraph>(map.read_count, lengths32);
      reduce_options.candidate_sink =
          [&full](graph::VertexId u, graph::VertexId v, std::uint16_t overlap,
                  const gpu::Key128&) { full->add_edge(u, v, overlap); };
      reduced = run_reduce_phase(ws, sorted, map.read_count, reduce_options);
      scope.set_host_bytes(reduced.host_bytes);
      if (cm != nullptr) {
        const std::vector<graph::Edge> edges = full->all_edges();
        io::write_all_records<graph::Edge>(
            cm->sidecar("full_graph.bin"),
            std::span<const graph::Edge>(edges), *ws.io);
        cm->record("phase:reduce",
                   {{"candidate_edges", reduced.candidate_edges},
                    {"false_positives", reduced.false_positives},
                    {"full_edges", full->edge_count()}});
      }
    } else if (config_.speculative_reduce) {
      // Partitioned speculative resolution: the reduce scan delivers
      // candidates through the sink in the canonical (layout-invariant)
      // offer order; a monotone counter turns that order into the global
      // rank, partitions are spread over a few domains by length, and the
      // resolver's speculate/reconcile rounds rebuild exactly the serial
      // greedy edge set.
      constexpr unsigned kDomains = 4;
      SpeculativeResolver resolver(map.read_count, kDomains);
      std::uint64_t next_rank = 0;
      reduce_options.candidate_sink =
          [&resolver, &next_rank](graph::VertexId u, graph::VertexId v,
                                  std::uint16_t overlap, const gpu::Key128&) {
            resolver.add_candidate(overlap % kDomains, u, v, overlap,
                                   next_rank++);
          };
      reduced = run_reduce_phase(ws, sorted, map.read_count, reduce_options);
      std::uint64_t conflicts = 0;
      for (const auto& round : resolver.run_to_fixpoint()) {
        conflicts += round.conflicts;
      }
      obs::MetricsRegistry::global().counter("reduce.spec.rounds")
          .add(static_cast<std::int64_t>(resolver.rounds()));
      obs::MetricsRegistry::global().counter("reduce.spec.conflicts")
          .add(static_cast<std::int64_t>(conflicts));
      reduced.graph = std::make_unique<graph::StringGraph>(map.read_count);
      reduced.graph->import_edges(resolver.graph().edges());
      reduced.accepted_edges = reduced.graph->edge_count() / 2;
      scope.set_host_bytes(reduced.host_bytes);
      if (cm != nullptr) {
        const std::vector<graph::Edge> edges = reduced.graph->edges();
        io::write_all_records<graph::Edge>(
            cm->sidecar("graph.bin"), std::span<const graph::Edge>(edges),
            *ws.io);
        cm->record("phase:reduce",
                   {{"candidate_edges", reduced.candidate_edges},
                    {"accepted_edges", reduced.accepted_edges},
                    {"false_positives", reduced.false_positives},
                    {"graph_edges", reduced.graph->edge_count()}});
      }
    } else {
      reduced = run_reduce_phase(ws, sorted, map.read_count, reduce_options);
      scope.set_host_bytes(reduced.host_bytes);
      if (cm != nullptr) {
        const std::vector<graph::Edge> edges = reduced.graph->edges();
        io::write_all_records<graph::Edge>(
            cm->sidecar("graph.bin"), std::span<const graph::Edge>(edges),
            *ws.io);
        cm->record("phase:reduce",
                   {{"candidate_edges", reduced.candidate_edges},
                    {"accepted_edges", reduced.accepted_edges},
                    {"false_positives", reduced.false_positives},
                    {"graph_edges", reduced.graph->edge_count()}});
      }
    }
  }
  // ---- Reduction (reduced graph mode only): blocked parallel Myers
  // transitive reduction over the full overlap graph, then the unitig walk
  // that keeps the unambiguous chain links. Deterministic at any thread
  // count/block size, so the contigs are byte-identical to a sequential
  // reduction (and to the distributed per-owner reduction).
  if (config_.graph == GraphMode::kReduced) {
    PhaseScope scope("reduction", ws, config_.machine, result.stats);
    if (reduction_restored) {
      const auto edges = io::read_all_records<graph::Edge>(
          cm->sidecar("reduced_graph.bin"), *ws.io);
      reduced.graph = std::make_unique<graph::StringGraph>(map.read_count);
      reduced.graph->import_edges(edges);
      result.full_edges = cm->counter("phase:reduce", "full_edges");
      result.transitive_removed =
          cm->counter("phase:reduction", "removed_edges");
      scope.mark_resumed();
      ++result.phases_resumed;
    } else {
      result.full_edges = full->edge_count();
      result.transitive_removed =
          full->reduce_parallel(util::ThreadPool::global());
      reduced.graph = std::make_unique<graph::StringGraph>(map.read_count);
      reduced.graph->import_edges(full->to_unitig_graph().edges());
      // The mark pass streams every adjacency list once for itself and
      // once per incoming middle-hop visit; charge two passes over the
      // edge array as the host-lane cost of the scan.
      scope.set_host_bytes(result.full_edges * 2 * sizeof(graph::Edge));
      auto& registry = obs::MetricsRegistry::global();
      registry.counter("graph.reduce.full_edges")
          .add(static_cast<std::int64_t>(result.full_edges));
      registry.counter("graph.reduce.removed_edges")
          .add(static_cast<std::int64_t>(result.transitive_removed));
      registry.counter("graph.reduce.unitig_edges")
          .add(static_cast<std::int64_t>(reduced.graph->edge_count()));
      if (cm != nullptr) {
        const std::vector<graph::Edge> edges = reduced.graph->edges();
        io::write_all_records<graph::Edge>(
            cm->sidecar("reduced_graph.bin"),
            std::span<const graph::Edge>(edges), *ws.io);
        cm->record("phase:reduction",
                   {{"removed_edges", result.transitive_removed},
                    {"graph_edges", reduced.graph->edge_count()}});
      }
    }
    reduced.accepted_edges = reduced.graph->edge_count() / 2;
    full.reset();
  }

  result.candidate_edges = reduced.candidate_edges;
  result.accepted_edges = reduced.accepted_edges;
  result.false_positives = reduced.false_positives;
  result.graph_edges = reduced.graph->edge_count();

  if (!config_.gfa_output.empty()) {
    graph::GfaOptions gfa_options;
    gfa_options.read_length = [&map](graph::ReadId r) {
      return static_cast<std::uint32_t>(map.read_lengths[r]);
    };
    gfa_options.skip_isolated_segments = !config_.include_singletons;
    graph::write_gfa_file(config_.gfa_output, *reduced.graph, gfa_options);
  }

  // ---- Compress. Never skipped: the contig file is the run's product and
  // is (re)written atomically, so re-running is always safe and cheap
  // relative to the phases above.
  CompressOptions compress_options;
  compress_options.include_singletons = config_.include_singletons;
  compress_options.min_contig_length = config_.min_contig_length;
  compress_options.read_lengths = std::move(map.read_lengths);
  CompressResult compressed;
  {
    PhaseScope scope("compress", ws, config_.machine, result.stats,
                     fastq_bytes);  // one re-stream (placement pass)
    compressed = run_compress_phase(ws, *reduced.graph, fastqs,
                                    output_fasta, compress_options);
  }
  result.paths = compressed.paths;
  result.contigs = compressed.stats;

  if (result.phases_resumed > 0) {
    LOG_INFO << "resume: " << result.phases_resumed
             << " phase(s) restored from checkpoint in " << work.string();
  }

  if (packed.has_value()) host_tracker.release(packed->memory_bytes());
  return result;
}

}  // namespace lasagna::core
