#include "core/pipeline.hpp"

#include <algorithm>

#include "graph/gfa.hpp"
#include "seq/read_store.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace lasagna::core {

namespace {

/// Collects one phase's deltas: wall clock, device modeled clock, disk
/// counters and memory peaks. Overlapped phases (the streamed sort) run
/// disk I/O concurrently with device work, so their modeled time is
/// max(device, disk) instead of the serial sum.
class PhaseScope {
 public:
  PhaseScope(std::string name, Workspace& ws, const MachineConfig& machine,
             util::RunStats& stats, double extra_input_bytes = 0.0,
             bool overlapped = false)
      : name_(std::move(name)),
        ws_(ws),
        machine_(machine),
        stats_(stats),
        extra_input_bytes_(extra_input_bytes),
        overlapped_(overlapped),
        io_before_(ws.io->snapshot()),
        device_before_(ws.device->modeled_seconds()) {
    ws.host->reset_peak();
    ws.device->memory().reset_peak();
  }

  ~PhaseScope() {
    util::PhaseStats phase;
    phase.name = name_;
    phase.wall_seconds = timer_.seconds();
    const auto io_after = ws_.io->snapshot();
    phase.disk_bytes_read =
        io_after.bytes_read - io_before_.bytes_read +
        static_cast<std::uint64_t>(extra_input_bytes_);
    phase.disk_bytes_written =
        io_after.bytes_written - io_before_.bytes_written;
    phase.peak_host_bytes = ws_.host->peak();
    phase.peak_device_bytes = ws_.device->memory().peak();
    // Device kernels process scaled data at real GPU rates; multiplying by
    // time_scale expresses them in the same full-size-world units as the
    // (bandwidth-scaled) disk time.
    phase.device_seconds =
        (ws_.device->modeled_seconds() - device_before_) *
        machine_.time_scale;
    phase.disk_seconds =
        static_cast<double>(phase.disk_bytes_read +
                            phase.disk_bytes_written) /
        machine_.disk_bandwidth_bytes_per_sec;
    phase.modeled_seconds =
        overlapped_ ? std::max(phase.device_seconds, phase.disk_seconds)
                    : phase.device_seconds + phase.disk_seconds;
    phase.overlap_efficiency =
        phase.modeled_seconds > 0.0
            ? (phase.device_seconds + phase.disk_seconds) /
                  phase.modeled_seconds
            : 1.0;
    stats_.add(std::move(phase));
  }

 private:
  std::string name_;
  Workspace& ws_;
  const MachineConfig& machine_;
  util::RunStats& stats_;
  double extra_input_bytes_;
  bool overlapped_;
  io::IoStats::Snapshot io_before_;
  double device_before_;
  util::WallTimer timer_;
};

}  // namespace

Assembler::Assembler(AssemblyConfig config) : config_(std::move(config)) {}

AssemblyResult Assembler::run(const std::filesystem::path& fastq,
                              const std::filesystem::path& output_fasta) {
  return run(std::vector<std::filesystem::path>{fastq}, output_fasta);
}

AssemblyResult Assembler::run(
    const std::vector<std::filesystem::path>& fastqs,
    const std::filesystem::path& output_fasta) {
  AssemblyResult result;

  device_ = std::make_unique<gpu::Device>(
      config_.machine.gpu_profile, config_.machine.device_memory_bytes);
  util::MemoryTracker host_tracker("host", 0);
  io::IoStats io_stats;

  std::optional<io::ScopedTempDir> temp;
  std::filesystem::path work = config_.work_dir;
  if (work.empty()) {
    temp.emplace("lasagna-run");
    work = temp->path();
  } else {
    std::filesystem::create_directories(work);
  }

  Workspace ws{device_.get(), &host_tracker, &io_stats, work};
  double fastq_bytes = 0.0;
  for (const auto& f : fastqs) {
    fastq_bytes += static_cast<double>(std::filesystem::file_size(f));
  }

  // ---- Load: one pass over the input to validate it and (in verify mode)
  // pin the packed reads in host memory.
  std::optional<seq::PackedReads> packed;
  {
    PhaseScope scope("load", ws, config_.machine, result.stats, fastq_bytes);
    if (config_.verify_overlaps) {
      packed.emplace(seq::PackedReads::from_files(fastqs));
      host_tracker.allocate(packed->memory_bytes());
    } else {
      seq::ReadBatchStream stream(fastqs, 1 << 20);
      seq::ReadBatch batch;
      while (stream.next(batch)) {
      }
      result.read_count = stream.reads_seen();
    }
  }

  // ---- Map.
  MapOptions map_options;
  map_options.min_overlap = config_.min_overlap;
  map_options.fingerprints = config_.fingerprints;
  MapResult map;
  {
    PhaseScope scope("map", ws, config_.machine, result.stats, fastq_bytes);
    map = run_map_phase(ws, fastqs, map_options);
  }
  result.read_count = map.read_count;
  result.total_bases = map.total_bases;
  result.tuples_emitted = map.tuples_emitted;

  // ---- Sort.
  BlockGeometry geometry = BlockGeometry::from(config_.machine);
  geometry.streamed = config_.streamed_sort;
  SortResult sorted;
  {
    PhaseScope scope("sort", ws, config_.machine, result.stats,
                     /*extra_input_bytes=*/0.0,
                     /*overlapped=*/config_.streamed_sort);
    sorted = run_sort_phase(ws, map, geometry);
  }
  result.records_sorted = sorted.records_sorted;
  result.sort_disk_passes = sorted.max_disk_passes;

  // ---- Reduce.
  ReduceOptions reduce_options;
  reduce_options.verify_overlaps = config_.verify_overlaps;
  reduce_options.reads = packed.has_value() ? &*packed : nullptr;
  ReduceResult reduced;
  {
    PhaseScope scope("reduce", ws, config_.machine, result.stats);
    reduced = run_reduce_phase(ws, sorted, map.read_count, reduce_options);
  }
  result.candidate_edges = reduced.candidate_edges;
  result.accepted_edges = reduced.accepted_edges;
  result.false_positives = reduced.false_positives;
  result.graph_edges = reduced.graph->edge_count();

  if (!config_.gfa_output.empty()) {
    graph::GfaOptions gfa_options;
    gfa_options.read_length = [&map](graph::ReadId r) {
      return static_cast<std::uint32_t>(map.read_lengths[r]);
    };
    gfa_options.skip_isolated_segments = !config_.include_singletons;
    graph::write_gfa_file(config_.gfa_output, *reduced.graph, gfa_options);
  }

  // ---- Compress.
  CompressOptions compress_options;
  compress_options.include_singletons = config_.include_singletons;
  compress_options.min_contig_length = config_.min_contig_length;
  compress_options.read_lengths = std::move(map.read_lengths);
  CompressResult compressed;
  {
    PhaseScope scope("compress", ws, config_.machine, result.stats,
                     fastq_bytes);  // one re-stream (placement pass)
    compressed = run_compress_phase(ws, *reduced.graph, fastqs,
                                    output_fasta, compress_options);
  }
  result.paths = compressed.paths;
  result.contigs = compressed.stats;

  if (packed.has_value()) host_tracker.release(packed->memory_bytes());
  return result;
}

}  // namespace lasagna::core
