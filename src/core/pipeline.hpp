// Single-node (single-GPU) assembly pipeline driver: Load -> Map -> Sort ->
// Reduce -> Compress, with per-phase wall time, modeled time (device cost
// model + disk bandwidth model), peak memory and disk traffic — the
// measurements behind the paper's Tables II-V.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "core/compress_phase.hpp"
#include "core/config.hpp"
#include "core/map_phase.hpp"
#include "core/reduce_phase.hpp"
#include "core/sort_phase.hpp"
#include "io/tempdir.hpp"
#include "util/stats.hpp"

namespace lasagna::core {

struct AssemblyResult {
  util::RunStats stats;            ///< phases: load, map, sort, reduce, compress
  std::uint32_t read_count = 0;
  std::uint64_t total_bases = 0;
  std::uint64_t tuples_emitted = 0;
  std::uint64_t records_sorted = 0;
  unsigned sort_disk_passes = 0;   ///< max per-partition disk passes
  std::uint64_t candidate_edges = 0;
  std::uint64_t accepted_edges = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t graph_edges = 0;
  /// Reduced graph mode only: full overlap-graph size before the blocked
  /// transitive reduction, and the number of edges the reduction removed.
  std::uint64_t full_edges = 0;
  std::uint64_t transitive_removed = 0;
  std::uint64_t paths = 0;
  ContigStats contigs;
  /// Phases restored from a checkpoint instead of executed (resume runs).
  unsigned phases_resumed = 0;
};

/// One assembly run. Construct with a config, call run().
class Assembler {
 public:
  explicit Assembler(AssemblyConfig config);

  /// Assemble `fastq` and write contigs to `output_fasta`.
  [[nodiscard]] AssemblyResult run(const std::filesystem::path& fastq,
                                   const std::filesystem::path& output_fasta);

  /// Assemble several input files (read ids are assigned across them in
  /// order — sequencing runs usually ship as multiple FASTQ files).
  [[nodiscard]] AssemblyResult run(
      const std::vector<std::filesystem::path>& fastqs,
      const std::filesystem::path& output_fasta);

  /// The device used by the last run (valid after run()).
  [[nodiscard]] const gpu::Device& device() const { return *device_; }

 private:
  AssemblyConfig config_;
  std::unique_ptr<gpu::Device> device_;
};

}  // namespace lasagna::core
