// Phase-granular checkpoint/restart for the assembly pipeline.
//
// A CheckpointManager owns a small text manifest in the workspace directory
// plus binary sidecar files (read lengths, graph edges) written with the
// usual record streams. Entries are recorded at phase boundaries and — in
// the sort phase — per level-1 run, so a run killed mid-sort resumes from
// the last finished run instead of the phase start. The manifest carries an
// input fingerprint and a config hash; a resume against different inputs or
// parameters is detected and falls back to a fresh run.
//
// Durability model: every record() rewrites the manifest to a temp file and
// renames it over the old one, so the manifest on disk is always a
// consistent prefix of the work actually completed (rename is atomic on
// POSIX). Sidecars are written before the entry that references them.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace lasagna::core {

class CheckpointManager {
 public:
  /// Named uint64 counters attached to one manifest entry.
  using Counters = std::map<std::string, std::uint64_t>;

  /// `dir` is the workspace directory the manifest lives in;
  /// `input_fingerprint` and `config_hash` guard against resuming across
  /// different inputs or parameters.
  CheckpointManager(std::filesystem::path dir,
                    std::uint64_t input_fingerprint,
                    std::uint64_t config_hash);

  /// Load an existing manifest. Returns true when one exists and matches
  /// this run's input fingerprint and config hash (entries become
  /// queryable); false otherwise (state stays empty).
  bool load();

  /// Discard any previous checkpoint state in the directory and write a
  /// fresh manifest header.
  void reset();

  /// True when `key` was recorded (by this run or a loaded manifest).
  [[nodiscard]] bool has(const std::string& key) const;

  /// The counters recorded for `key` (empty map if absent).
  [[nodiscard]] Counters counters(const std::string& key) const;

  /// One counter of one entry, or `fallback` when absent.
  [[nodiscard]] std::uint64_t counter(const std::string& key,
                                      const std::string& name,
                                      std::uint64_t fallback = 0) const;

  /// Entries whose key starts with `prefix`, in lexicographic key order
  /// (numeric key segments are zero-padded so this is also numeric order).
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      const std::string& prefix) const;

  /// Record (or overwrite) an entry and atomically persist the manifest.
  /// Thread-safe: the streamed sort marks runs from its writer thread.
  void record(const std::string& key, const Counters& counters);

  /// Path of a binary sidecar file inside the checkpoint's directory.
  [[nodiscard]] std::filesystem::path sidecar(const std::string& name) const {
    return dir_ / ("checkpoint." + name);
  }

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  /// FNV-1a over each input's filename and size — cheap, order-sensitive,
  /// and enough to catch "resumed against a different dataset".
  static std::uint64_t fingerprint_inputs(
      const std::vector<std::filesystem::path>& files);

 private:
  void persist_locked();  ///< rewrite manifest.tmp + rename (mutex held)

  std::filesystem::path dir_;
  std::uint64_t input_fingerprint_;
  std::uint64_t config_hash_;
  mutable std::mutex mutex_;
  std::map<std::string, Counters> entries_;
};

/// Hash of the parameters that shape intermediate files — resuming under a
/// changed value of any of these would splice incompatible state.
std::uint64_t hash_assembly_config(const AssemblyConfig& config);

}  // namespace lasagna::core
