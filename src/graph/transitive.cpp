#include "graph/transitive.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace lasagna::graph {

FullStringGraph::FullStringGraph(
    std::uint32_t read_count, const std::vector<std::uint32_t>& read_lengths)
    : vertex_length_(static_cast<std::size_t>(read_count) * 2),
      adjacency_(static_cast<std::size_t>(read_count) * 2) {
  if (read_lengths.size() != read_count) {
    throw std::invalid_argument("FullStringGraph: length vector mismatch");
  }
  for (std::uint32_t r = 0; r < read_count; ++r) {
    vertex_length_[forward_vertex(r)] = read_lengths[r];
    vertex_length_[reverse_vertex(r)] = read_lengths[r];
  }
}

void FullStringGraph::add_edge(VertexId u, VertexId v, std::uint16_t overlap) {
  if (u >= vertex_count() || v >= vertex_count()) {
    throw std::out_of_range("FullStringGraph::add_edge: bad vertex");
  }
  if (u == v || v == complement_vertex(u)) return;

  // Keep only the longest overlap per (src, dst); on a tie the stored edge
  // wins (the canonical direction is upserted first, so equal-overlap
  // duplicates resolve to the lowest (src, dst) presentation no matter
  // which direction or order the caller used).
  const VertexId tu = complement_vertex(v);
  const VertexId tv = complement_vertex(u);
  if (tu < u || (tu == u && tv < v)) {
    upsert_directed_edge(adjacency_[tu], tu, tv, overlap);
    upsert_directed_edge(adjacency_[u], u, v, overlap);
  } else {
    upsert_directed_edge(adjacency_[u], u, v, overlap);
    upsert_directed_edge(adjacency_[tu], tu, tv, overlap);
  }
}

std::uint64_t FullStringGraph::edge_count() const {
  std::uint64_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total;
}

std::vector<Edge> FullStringGraph::all_edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count());
  for (const auto& adj : adjacency_) {
    out.insert(out.end(), adj.begin(), adj.end());
  }
  return out;
}

void FullStringGraph::import_edges(const std::vector<Edge>& edges) {
  for (const Edge& e : edges) {
    if (e.src >= vertex_count() || e.dst >= vertex_count()) {
      throw std::out_of_range("FullStringGraph::import_edges: bad vertex");
    }
    adjacency_[e.src].push_back(e);
  }
}

std::uint64_t FullStringGraph::reduce() {
  // Pass 1: mark. Every vertex is classified against the unreduced
  // adjacency, so no vertex observes another's sweep.
  const std::uint32_t n = vertex_count();
  std::vector<std::uint8_t> mark(n, 0);
  std::vector<std::vector<std::uint8_t>> transitive(n);
  auto adjacency_of = [this](VertexId w) -> const std::vector<Edge>& {
    return adjacency_[w];
  };
  auto length_of = [this](VertexId w) { return vertex_length_[w]; };
  for (VertexId v = 0; v < n; ++v) {
    mark_transitive_edges(adjacency_[v], vertex_length_[v], adjacency_of,
                          length_of, mark, transitive[v]);
  }

  // Pass 2: sweep.
  std::uint64_t removed = 0;
  for (VertexId v = 0; v < n; ++v) {
    auto& adj = adjacency_[v];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (transitive[v][i] == 0) adj[keep++] = adj[i];
    }
    removed += adj.size() - keep;
    adj.resize(keep);
  }
  return removed;
}

std::uint64_t FullStringGraph::reduce_parallel(util::ThreadPool& pool,
                                               std::uint32_t block_vertices) {
  const std::uint32_t n = vertex_count();
  if (n == 0) return 0;
  if (block_vertices == 0) {
    // ~4 blocks per worker: enough slack for stragglers on skewed
    // adjacency without drowning in per-block scratch resets.
    const std::uint32_t per_worker =
        static_cast<std::uint32_t>(pool.size() * 4);
    block_vertices = std::max<std::uint32_t>(1, (n + per_worker - 1) /
                                                    std::max(1u, per_worker));
  }
  const std::uint32_t blocks = (n + block_vertices - 1) / block_vertices;

  // Pass 1: mark blocks concurrently. The flag matrix is the only output;
  // adjacency stays immutable until every block is done, which is the
  // whole byte-identity argument — each vertex's flags are the same pure
  // function `reduce()` computes.
  std::vector<std::vector<std::uint8_t>> transitive(n);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const VertexId begin = b * block_vertices;
    const VertexId end = std::min<std::uint64_t>(
        n, static_cast<std::uint64_t>(begin) + block_vertices);
    pool.submit([this, begin, end, n, &transitive] {
      std::vector<std::uint8_t> mark(n, 0);
      auto adjacency_of = [this](VertexId w) -> const std::vector<Edge>& {
        return adjacency_[w];
      };
      auto length_of = [this](VertexId w) { return vertex_length_[w]; };
      for (VertexId v = begin; v < end; ++v) {
        mark_transitive_edges(adjacency_[v], vertex_length_[v], adjacency_of,
                              length_of, mark, transitive[v]);
      }
    });
  }
  pool.wait_idle();

  // Pass 2: sweep blocks concurrently; per-block removal counts are summed
  // in block order.
  std::vector<std::uint64_t> block_removed(blocks, 0);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const VertexId begin = b * block_vertices;
    const VertexId end = std::min<std::uint64_t>(
        n, static_cast<std::uint64_t>(begin) + block_vertices);
    pool.submit([this, begin, end, b, &transitive, &block_removed] {
      std::uint64_t removed = 0;
      for (VertexId v = begin; v < end; ++v) {
        auto& adj = adjacency_[v];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < adj.size(); ++i) {
          if (transitive[v][i] == 0) adj[keep++] = adj[i];
        }
        removed += adj.size() - keep;
        adj.resize(keep);
      }
      block_removed[b] = removed;
    });
  }
  pool.wait_idle();

  std::uint64_t removed = 0;
  for (const std::uint64_t r : block_removed) removed += r;
  return removed;
}

StringGraph FullStringGraph::to_unitig_graph() const {
  std::vector<std::uint32_t> in_degree(vertex_count(), 0);
  for (const auto& adj : adjacency_) {
    for (const Edge& e : adj) ++in_degree[e.dst];
  }
  StringGraph unitigs(vertex_count() / 2);
  // Ascending vertex order; each qualifying src contributes exactly one
  // edge, so this equals inserting the qualifying edge set sorted by src —
  // the order the distributed stitch superstep reproduces.
  for (VertexId v = 0; v < vertex_count(); ++v) {
    if (adjacency_[v].size() != 1) continue;
    const Edge& e = adjacency_[v].front();
    if (in_degree[e.dst] != 1) continue;
    unitigs.try_add_edge(v, e.dst, e.overlap);
  }
  return unitigs;
}

StringGraph FullStringGraph::to_greedy() const {
  StringGraph greedy(vertex_count() / 2);
  // Candidates in descending overlap order, mirroring the reduce phase's
  // longest-first partition processing.
  std::vector<Edge> all;
  all.reserve(edge_count());
  for (const auto& adj : adjacency_) {
    all.insert(all.end(), adj.begin(), adj.end());
  }
  std::sort(all.begin(), all.end(), [](const Edge& a, const Edge& b) {
    if (a.overlap != b.overlap) return a.overlap > b.overlap;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  for (const Edge& e : all) greedy.try_add_edge(e.src, e.dst, e.overlap);
  return greedy;
}

}  // namespace lasagna::graph
