#include "graph/transitive.hpp"

#include <algorithm>
#include <stdexcept>

namespace lasagna::graph {

FullStringGraph::FullStringGraph(
    std::uint32_t read_count, const std::vector<std::uint32_t>& read_lengths)
    : vertex_length_(static_cast<std::size_t>(read_count) * 2),
      adjacency_(static_cast<std::size_t>(read_count) * 2) {
  if (read_lengths.size() != read_count) {
    throw std::invalid_argument("FullStringGraph: length vector mismatch");
  }
  for (std::uint32_t r = 0; r < read_count; ++r) {
    vertex_length_[forward_vertex(r)] = read_lengths[r];
    vertex_length_[reverse_vertex(r)] = read_lengths[r];
  }
}

void FullStringGraph::add_edge(VertexId u, VertexId v, std::uint16_t overlap) {
  if (u >= vertex_count() || v >= vertex_count()) {
    throw std::out_of_range("FullStringGraph::add_edge: bad vertex");
  }
  if (u == v || v == complement_vertex(u)) return;

  auto upsert = [this](VertexId src, VertexId dst, std::uint16_t len) {
    for (Edge& e : adjacency_[src]) {
      if (e.dst == dst) {
        e.overlap = std::max(e.overlap, len);
        return;
      }
    }
    adjacency_[src].push_back(Edge{src, dst, len});
  };
  upsert(u, v, overlap);
  upsert(complement_vertex(v), complement_vertex(u), overlap);
}

std::uint64_t FullStringGraph::edge_count() const {
  std::uint64_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total;
}

void FullStringGraph::sort_adjacency() {
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end(), [](const Edge& a, const Edge& b) {
      return a.overlap != b.overlap ? a.overlap > b.overlap : a.dst < b.dst;
    });
  }
}

std::uint64_t FullStringGraph::reduce() {
  sort_adjacency();

  // Myers' algorithm. For edge (v, w): overhang(v, w) = len(v) - overlap.
  // Edge (v, x) is transitive if some w in adj(v) has (w, x) with
  // overhang(v, w) + overhang(w, x) == overhang(v, x).
  enum class Mark : std::uint8_t { kVacant, kInPlay, kEliminated };
  std::vector<Mark> mark(vertex_count(), Mark::kVacant);
  std::vector<std::uint8_t> reduce_flag;

  std::uint64_t removed = 0;
  for (VertexId v = 0; v < vertex_count(); ++v) {
    auto& adj = adjacency_[v];
    if (adj.empty()) continue;
    const std::uint32_t len_v = vertex_length_[v];

    for (const Edge& e : adj) mark[e.dst] = Mark::kInPlay;

    // Walk targets from longest overlap (shortest overhang) outward; any
    // in-play vertex reachable with a matching combined overhang is
    // transitive.
    for (const Edge& vw : adj) {
      if (mark[vw.dst] != Mark::kInPlay) continue;
      const std::uint32_t overhang_vw = len_v - vw.overlap;
      for (const Edge& wx : adjacency_[vw.dst]) {
        if (mark[wx.dst] != Mark::kInPlay) continue;
        const std::uint32_t overhang_wx =
            vertex_length_[vw.dst] - wx.overlap;
        // Does v -> w -> x line up exactly with a direct edge v -> x?
        for (const Edge& vx : adj) {
          if (vx.dst != wx.dst) continue;
          if (len_v - vx.overlap == overhang_vw + overhang_wx) {
            mark[wx.dst] = Mark::kEliminated;
          }
          break;
        }
      }
    }

    reduce_flag.assign(adj.size(), 0);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (mark[adj[i].dst] == Mark::kEliminated) reduce_flag[i] = 1;
    }
    for (const Edge& e : adj) mark[e.dst] = Mark::kVacant;

    std::size_t keep = 0;
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (reduce_flag[i] == 0) adj[keep++] = adj[i];
    }
    removed += adj.size() - keep;
    adj.resize(keep);
  }
  return removed;
}

StringGraph FullStringGraph::to_greedy() const {
  StringGraph greedy(vertex_count() / 2);
  // Candidates in descending overlap order, mirroring the reduce phase's
  // longest-first partition processing.
  std::vector<Edge> all;
  all.reserve(edge_count());
  for (const auto& adj : adjacency_) {
    all.insert(all.end(), adj.begin(), adj.end());
  }
  std::sort(all.begin(), all.end(), [](const Edge& a, const Edge& b) {
    if (a.overlap != b.overlap) return a.overlap > b.overlap;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  for (const Edge& e : all) greedy.try_add_edge(e.src, e.dst, e.overlap);
  return greedy;
}

}  // namespace lasagna::graph
