// Path extraction — the first stage of the Compress phase (paper III-D).
//
// A path is a maximal unambiguous walk: it starts at a seed (in-degree 0,
// out-degree 1) and follows single out-edges until a vertex without one.
// Each step records the vertex and its *overhang length* — for a read r_u
// overlapping r_v by o, the overhang is len(r_u) - o; the final read of a
// path (and any isolated read) has overhang equal to its full length.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/string_graph.hpp"

namespace lasagna::graph {

struct PathStep {
  VertexId vertex = 0;
  std::uint32_t overhang = 0;
};

using Path = std::vector<PathStep>;

struct TraverseOptions {
  /// Emit isolated reads (no overlaps at all) as singleton paths.
  bool include_singletons = true;
  /// The graph is strand-symmetric, so every path has a reverse-complement
  /// twin; when true only the canonical one of each pair is emitted.
  bool dedupe_complements = true;
};

/// Extract all paths. `read_length(read_id)` supplies read lengths for
/// overhang computation.
[[nodiscard]] std::vector<Path> extract_paths(
    const StringGraph& graph,
    const std::function<std::uint32_t(ReadId)>& read_length,
    const TraverseOptions& options = {});

/// Total bases of the contig a path spells (sum of overhangs).
[[nodiscard]] std::uint64_t path_contig_length(const Path& path);

}  // namespace lasagna::graph
