#include "graph/string_graph.hpp"

#include <stdexcept>

namespace lasagna::graph {

StringGraph::StringGraph(std::uint32_t read_count)
    : read_count_(read_count),
      out_degree_(static_cast<std::size_t>(read_count) * 2),
      out_dst_(static_cast<std::size_t>(read_count) * 2, kNoEdge),
      out_len_(static_cast<std::size_t>(read_count) * 2, 0) {}

bool StringGraph::try_add_edge(VertexId u, VertexId v, std::uint16_t overlap) {
  if (u >= vertex_count() || v >= vertex_count()) {
    throw std::out_of_range("StringGraph::try_add_edge: bad vertex");
  }
  // A read never overlaps itself (l < l_max excludes identity) and an edge
  // to its own complement collapses the complementary-edge invariant.
  if (v == u || v == complement_vertex(u)) return false;

  const VertexId vc = complement_vertex(v);
  if (out_degree_.test(u) || out_degree_.test(vc)) return false;

  out_degree_.set(u);
  out_degree_.set(vc);
  out_dst_[u] = v;
  out_len_[u] = overlap;
  out_dst_[vc] = complement_vertex(u);
  out_len_[vc] = overlap;
  edge_count_ += 2;
  return true;
}

std::optional<Edge> StringGraph::out_edge(VertexId v) const {
  if (v >= vertex_count()) {
    throw std::out_of_range("StringGraph::out_edge: bad vertex");
  }
  if (out_dst_[v] == kNoEdge) return std::nullopt;
  return Edge{v, out_dst_[v], out_len_[v]};
}

void StringGraph::set_out_degree_bits(util::AtomicBitVector bits) {
  if (bits.size() != out_degree_.size()) {
    throw std::invalid_argument("set_out_degree_bits: size mismatch");
  }
  out_degree_ = std::move(bits);
}

std::vector<Edge> StringGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (VertexId v = 0; v < vertex_count(); ++v) {
    if (out_dst_[v] != kNoEdge) {
      out.push_back(Edge{v, out_dst_[v], out_len_[v]});
    }
  }
  return out;
}

void StringGraph::import_edges(const std::vector<Edge>& edges) {
  for (const Edge& e : edges) {
    if (e.src >= vertex_count() || e.dst >= vertex_count()) {
      throw std::out_of_range("StringGraph::import_edges: bad vertex");
    }
    if (out_dst_[e.src] == kNoEdge) ++edge_count_;
    out_dst_[e.src] = e.dst;
    out_len_[e.src] = e.overlap;
    out_degree_.set(e.src);
  }
}

std::uint64_t StringGraph::memory_bytes() const {
  return out_dst_.size() * sizeof(VertexId) +
         out_len_.size() * sizeof(std::uint16_t) + out_degree_.byte_size();
}

}  // namespace lasagna::graph
