// Full (non-greedy) string graph with transitive reduction.
//
// The paper's background (II-A2) describes the classical alternative to the
// greedy heuristic: keep *all* overlap edges, then remove transitive edges
// (Myers 2005) — if r_i overlaps r_j and r_k, and r_j overlaps r_k
// "in line", the edge (r_i, r_k) carries no extra information. The reduced
// graph is a production path (`--graph=reduced`): its unambiguous chain
// links feed the same unitig traversal the greedy graph uses.
//
// Determinism contract: adjacency lists are kept sorted by (overlap desc,
// dst asc) at insertion, twin pairs are upserted in canonical (lowest
// (src, dst) first) order, and `reduce()` marks every vertex against the
// *unreduced* adjacency before any edge is swept. The reduction is
// therefore a pure per-vertex function of the input edge set — which is
// what makes the blocked parallel reduction (`reduce_parallel`) and the
// distributed per-owner reduction byte-identical to the sequential pass at
// any thread count, block size or node count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/string_graph.hpp"

namespace lasagna::util {
class ThreadPool;
}  // namespace lasagna::util

namespace lasagna::graph {

/// Canonical adjacency order: descending overlap, ties by ascending dst.
/// Total within one adjacency list (dst is unique per src), so a sorted
/// list is independent of insertion order.
inline bool adjacency_less(const Edge& a, const Edge& b) {
  return a.overlap != b.overlap ? a.overlap > b.overlap : a.dst < b.dst;
}

/// Upsert one directed edge into an adjacency list kept sorted by
/// `adjacency_less`: a duplicate (src, dst) pair keeps only the longest
/// overlap, and an equal-overlap duplicate keeps the stored edge. Shared
/// by FullStringGraph::add_edge and the distributed owners so both build
/// identical adjacency regardless of arrival order.
inline void upsert_directed_edge(std::vector<Edge>& adj, VertexId src,
                                 VertexId dst, std::uint16_t overlap) {
  const auto dup = std::find_if(adj.begin(), adj.end(),
                                [dst](const Edge& e) { return e.dst == dst; });
  if (dup != adj.end()) {
    if (dup->overlap >= overlap) return;
    adj.erase(dup);
  }
  const Edge edge{src, dst, overlap};
  adj.insert(std::lower_bound(adj.begin(), adj.end(), edge, adjacency_less),
             edge);
}

/// The marking half of Myers' transitive reduction for a single vertex,
/// evaluated against *immutable* (pre-sweep) neighbor adjacency. For edge
/// (v, w): overhang(v, w) = len(v) - overlap. Edge (v, x) is transitive if
/// some w in adj(v) has (w, x) with overhang(v, w) + overhang(w, x) ==
/// overhang(v, x). `adj` must be sorted by `adjacency_less`;
/// `adjacency_of(w)` must return w's sorted, unreduced adjacency and
/// `length_of(w)` its read length. `mark` is caller-owned scratch (one slot
/// per vertex id, all zero on entry, restored to zero on exit).
/// `transitive_out[i]` is set to 1 iff adj[i] is transitive.
///
/// Shared (as a template, so the distributed owner can present its
/// block + halo adjacency without materializing a FullStringGraph) by the
/// sequential, thread-pool and cluster reduction paths: one marking
/// function is the byte-identity argument.
template <typename AdjacencyOf, typename LengthOf>
void mark_transitive_edges(const std::vector<Edge>& adj, std::uint32_t len_v,
                           AdjacencyOf&& adjacency_of, LengthOf&& length_of,
                           std::vector<std::uint8_t>& mark,
                           std::vector<std::uint8_t>& transitive_out) {
  constexpr std::uint8_t kVacant = 0, kInPlay = 1, kEliminated = 2;
  transitive_out.assign(adj.size(), 0);
  if (adj.empty()) return;

  for (const Edge& e : adj) mark[e.dst] = kInPlay;

  // Walk targets from longest overlap (shortest overhang) outward; any
  // in-play vertex reachable with a matching combined overhang is
  // transitive.
  for (const Edge& vw : adj) {
    if (mark[vw.dst] != kInPlay) continue;
    const std::uint32_t overhang_vw = len_v - vw.overlap;
    const std::uint32_t len_w = length_of(vw.dst);
    for (const Edge& wx : adjacency_of(vw.dst)) {
      if (wx.dst >= mark.size() || mark[wx.dst] != kInPlay) continue;
      const std::uint32_t overhang_wx = len_w - wx.overlap;
      // Does v -> w -> x line up exactly with a direct edge v -> x?
      for (const Edge& vx : adj) {
        if (vx.dst != wx.dst) continue;
        if (len_v - vx.overlap == overhang_vw + overhang_wx) {
          mark[wx.dst] = kEliminated;
        }
        break;
      }
    }
  }

  for (std::size_t i = 0; i < adj.size(); ++i) {
    if (mark[adj[i].dst] == kEliminated) transitive_out[i] = 1;
  }
  for (const Edge& e : adj) mark[e.dst] = kVacant;
}

class FullStringGraph {
 public:
  explicit FullStringGraph(std::uint32_t read_count,
                           const std::vector<std::uint32_t>& read_lengths);

  /// Add an overlap edge and its complementary twin. Duplicate (src, dst)
  /// pairs keep only the longest overlap; on an equal-overlap duplicate the
  /// stored edge wins, and the twin pair is upserted lowest-(src, dst)
  /// first, so the result is independent of the direction a caller
  /// presents the overlap in and of the call order.
  void add_edge(VertexId u, VertexId v, std::uint16_t overlap);

  [[nodiscard]] std::uint32_t vertex_count() const {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] std::uint64_t edge_count() const;

  /// Outgoing edges of `v`, sorted by `adjacency_less` (an insertion-order
  /// independent, canonical ordering).
  [[nodiscard]] const std::vector<Edge>& out_edges(VertexId v) const {
    return adjacency_[v];
  }

  /// Flatten the adjacency (ascending src, canonical per-src order; both
  /// twin directions present) — the checkpoint sidecar format.
  [[nodiscard]] std::vector<Edge> all_edges() const;

  /// Trusted bulk import of `all_edges()` output into an empty graph (the
  /// canonical per-src order is preserved verbatim, no re-ranking).
  void import_edges(const std::vector<Edge>& edges);

  [[nodiscard]] std::uint32_t vertex_length(VertexId v) const {
    return vertex_length_[v];
  }

  /// Myers' transitive reduction, two-pass: mark every vertex's transitive
  /// out-edges against the unreduced adjacency, then sweep. Returns the
  /// number of edges removed. The result is a pure function of the edge
  /// set (no cross-vertex sweep-order dependence).
  std::uint64_t reduce();

  /// Blocked parallel reduction: vertex ranges of `block_vertices` ids
  /// (0 = pick from the pool size) are marked concurrently on `pool`, then
  /// swept. Byte-identical to `reduce()` for every thread count and block
  /// size — marking reads only the immutable pre-sweep adjacency.
  std::uint64_t reduce_parallel(util::ThreadPool& pool,
                                std::uint32_t block_vertices = 0);

  /// Unitig edges of the reduced graph: edge (v, w) is kept iff v's
  /// out-degree is 1 and w's in-degree is 1 — the unambiguous chain links
  /// (arXiv:2207.04350's contig-generation walk). Returned as a greedy
  /// StringGraph so the existing traversal and compress phase run
  /// unchanged. Call after reduce().
  [[nodiscard]] StringGraph to_unitig_graph() const;

  /// Convert to a greedy StringGraph by keeping, per vertex, the longest
  /// surviving out-edge whose target still has a free in-slot.
  [[nodiscard]] StringGraph to_greedy() const;

 private:
  std::vector<std::uint32_t> vertex_length_;  // read length per vertex
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace lasagna::graph
