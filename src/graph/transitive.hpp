// Full (non-greedy) string graph with transitive reduction.
//
// The paper's background (II-A2) describes the classical alternative to the
// greedy heuristic: keep *all* overlap edges, then remove transitive edges
// (Myers 2005) — if r_i overlaps r_j and r_k, and r_j overlaps r_k
// "in line", the edge (r_i, r_k) carries no extra information. LaSAGNA
// itself uses the greedy graph; this module exists for the design-choice
// ablation (bench_graph) and for validating the greedy output against the
// reduced full graph on small inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/string_graph.hpp"

namespace lasagna::graph {

class FullStringGraph {
 public:
  explicit FullStringGraph(std::uint32_t read_count,
                           const std::vector<std::uint32_t>& read_lengths);

  /// Add an overlap edge and its complementary twin. Duplicate (src, dst)
  /// pairs keep only the longest overlap.
  void add_edge(VertexId u, VertexId v, std::uint16_t overlap);

  [[nodiscard]] std::uint32_t vertex_count() const {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] std::uint64_t edge_count() const;

  /// Outgoing edges of `v`, sorted by descending overlap.
  [[nodiscard]] const std::vector<Edge>& out_edges(VertexId v) const {
    return adjacency_[v];
  }

  /// Myers' transitive-reduction: mark-and-sweep removal of edges implied
  /// by two-hop paths with matching overhangs. Returns the number of edges
  /// removed. Must be called after all add_edge calls; sorts adjacency.
  std::uint64_t reduce();

  /// Convert to a greedy StringGraph by keeping, per vertex, the longest
  /// surviving out-edge whose target still has a free in-slot.
  [[nodiscard]] StringGraph to_greedy() const;

 private:
  void sort_adjacency();

  std::vector<std::uint32_t> vertex_length_;  // read length per vertex
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace lasagna::graph
