// Greedy string graph (paper sections II-A2 and III-C).
//
// Vertices are reads *and* their Watson-Crick complements:
//   vertex id = (read id << 1) | strand, strand 1 = reverse complement,
// so complement_vertex(v) == v ^ 1.
//
// The graph is greedy: each vertex keeps at most one outgoing edge, and
// because every edge (u, v, l) is stored together with its complementary
// edge (v', u', l), the at-most-one-*incoming*-edge invariant follows for
// free — v has an in-edge exactly when v' has an out-edge. One out-degree
// bit-vector therefore suffices, as in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bitvector.hpp"

namespace lasagna::graph {

using VertexId = std::uint32_t;
using ReadId = std::uint32_t;

[[nodiscard]] constexpr VertexId forward_vertex(ReadId read) {
  return read << 1;
}
[[nodiscard]] constexpr VertexId reverse_vertex(ReadId read) {
  return (read << 1) | 1u;
}
[[nodiscard]] constexpr VertexId complement_vertex(VertexId v) {
  return v ^ 1u;
}
[[nodiscard]] constexpr ReadId read_of(VertexId v) { return v >> 1; }
[[nodiscard]] constexpr bool is_reverse(VertexId v) { return (v & 1u) != 0; }

/// A directed overlap edge: the `overlap`-length suffix of `src` equals the
/// `overlap`-length prefix of `dst`.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  std::uint16_t overlap = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class StringGraph {
 public:
  explicit StringGraph(std::uint32_t read_count);

  [[nodiscard]] std::uint32_t read_count() const { return read_count_; }
  [[nodiscard]] std::uint32_t vertex_count() const { return read_count_ * 2; }
  [[nodiscard]] std::uint64_t edge_count() const { return edge_count_; }

  /// Greedy candidate-edge admission (paper III-C): the edge (u, v, overlap)
  /// is accepted iff neither u nor complement(v) already has an outgoing
  /// edge; on acceptance both (u, v) and (v', u') are recorded. Self-pairs
  /// (v == u or v == u') are always rejected. Returns true if accepted.
  bool try_add_edge(VertexId u, VertexId v, std::uint16_t overlap);

  /// The single outgoing edge of `v`, if any.
  [[nodiscard]] std::optional<Edge> out_edge(VertexId v) const;

  [[nodiscard]] bool has_out_edge(VertexId v) const {
    return out_degree_.test(v);
  }

  /// v has an in-edge iff its complement has an out-edge.
  [[nodiscard]] bool has_in_edge(VertexId v) const {
    return out_degree_.test(complement_vertex(v));
  }

  /// Snapshot of the out-degree bit-vector (the token forwarded between
  /// nodes in the distributed reduce, paper III-E3).
  [[nodiscard]] const util::AtomicBitVector& out_degree_bits() const {
    return out_degree_;
  }

  /// Replace the out-degree bit-vector (distributed reduce: a node receives
  /// the token before creating greedy edges for its partition).
  void set_out_degree_bits(util::AtomicBitVector bits);

  /// All edges, in insertion order (complementary edges included).
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Bulk-import edges (distributed reduce merges per-node edge sets).
  /// Edges are trusted — no greedy checks; out-degree bits are updated.
  void import_edges(const std::vector<Edge>& edges);

  /// Approximate resident bytes (adjacency + bit-vector).
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  static constexpr VertexId kNoEdge = 0xffffffffu;

  std::uint32_t read_count_;
  std::uint64_t edge_count_ = 0;
  util::AtomicBitVector out_degree_;
  std::vector<VertexId> out_dst_;        // kNoEdge when absent
  std::vector<std::uint16_t> out_len_;
};

}  // namespace lasagna::graph
