#include "graph/gfa.hpp"

#include <fstream>
#include <stdexcept>

namespace lasagna::graph {

void write_gfa(std::ostream& out, const StringGraph& graph,
               const GfaOptions& options) {
  if (!options.read_sequence && !options.read_length) {
    throw std::invalid_argument(
        "write_gfa: need read_sequence or read_length");
  }

  out << "H\tVN:Z:1.0\n";

  // Segments.
  for (ReadId r = 0; r < graph.read_count(); ++r) {
    if (options.skip_isolated_segments &&
        !graph.has_out_edge(forward_vertex(r)) &&
        !graph.has_in_edge(forward_vertex(r)) &&
        !graph.has_out_edge(reverse_vertex(r)) &&
        !graph.has_in_edge(reverse_vertex(r))) {
      continue;
    }
    out << "S\tread" << r << '\t';
    if (options.read_sequence) {
      out << options.read_sequence(r) << '\n';
    } else {
      out << "*\tLN:i:" << options.read_length(r) << '\n';
    }
  }

  // Links: one per complement pair. The canonical representative is the
  // edge whose source vertex is <= the complement of its target (the same
  // rule path deduplication uses).
  for (const Edge& e : graph.edges()) {
    if (e.src > complement_vertex(e.dst)) continue;
    out << "L\tread" << read_of(e.src) << '\t'
        << (is_reverse(e.src) ? '-' : '+') << "\tread" << read_of(e.dst)
        << '\t' << (is_reverse(e.dst) ? '-' : '+') << '\t' << e.overlap
        << "M\n";
  }
}

void write_gfa_file(const std::filesystem::path& path,
                    const StringGraph& graph, const GfaOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create " + path.string());
  write_gfa(out, graph, options);
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

}  // namespace lasagna::graph
