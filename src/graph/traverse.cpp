#include "graph/traverse.hpp"

#include <stdexcept>

namespace lasagna::graph {

namespace {

/// Canonical representative of a path / complement-path pair: compare the
/// path's first vertex with the complement of its last. The twin of path
/// v1 -> ... -> vk is vk' -> ... -> v1', whose head is vk'; keeping the
/// lexicographically smaller head picks exactly one of the two (a
/// self-complementary path has v1 == vk' and is always kept).
bool is_canonical(VertexId head, VertexId tail) {
  return head <= complement_vertex(tail);
}

}  // namespace

std::vector<Path> extract_paths(
    const StringGraph& graph,
    const std::function<std::uint32_t(ReadId)>& read_length,
    const TraverseOptions& options) {
  std::vector<Path> paths;
  const VertexId n = graph.vertex_count();

  for (VertexId seed = 0; seed < n; ++seed) {
    const bool has_out = graph.has_out_edge(seed);
    const bool has_in = graph.has_in_edge(seed);

    if (!has_out && !has_in) {
      // Isolated read: forward strand only (the reverse twin is implied).
      if (options.include_singletons && !is_reverse(seed)) {
        paths.push_back(Path{{seed, read_length(read_of(seed))}});
      }
      continue;
    }
    if (has_in || !has_out) continue;  // not a seed

    Path path;
    VertexId v = seed;
    std::uint64_t guard = 0;
    for (;;) {
      if (++guard > n) {
        throw std::logic_error("extract_paths: cycle reached from a seed");
      }
      const auto edge = graph.out_edge(v);
      if (!edge.has_value()) {
        path.push_back({v, read_length(read_of(v))});
        break;
      }
      const std::uint32_t len = read_length(read_of(v));
      if (edge->overlap >= len) {
        throw std::logic_error("extract_paths: overlap >= read length");
      }
      path.push_back({v, len - edge->overlap});
      v = edge->dst;
    }

    if (!options.dedupe_complements ||
        is_canonical(path.front().vertex, path.back().vertex)) {
      paths.push_back(std::move(path));
    }
  }
  return paths;
}

std::uint64_t path_contig_length(const Path& path) {
  std::uint64_t total = 0;
  for (const auto& step : path) total += step.overhang;
  return total;
}

}  // namespace lasagna::graph
