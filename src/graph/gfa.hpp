// GFA 1.0 export of the string graph.
//
// GFA (Graphical Fragment Assembly) is the interchange format modern
// assembly tooling (Bandage, gfatools, ...) consumes. Each read becomes a
// segment; each overlap edge becomes a link with a <overlap>M CIGAR. Since
// the string graph stores both an edge and its Watson-Crick twin, only the
// canonical one of each pair is emitted (GFA links are traversable in both
// directions).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <ostream>

#include "graph/string_graph.hpp"

namespace lasagna::graph {

struct GfaOptions {
  /// Supplies the sequence for a read id; when empty, segments carry '*'
  /// plus an LN tag with the length from `read_length`.
  std::function<std::string(ReadId)> read_sequence;
  std::function<std::uint32_t(ReadId)> read_length;
  /// Skip segments that participate in no link.
  bool skip_isolated_segments = false;
};

/// Write the graph as GFA 1.0.
void write_gfa(std::ostream& out, const StringGraph& graph,
               const GfaOptions& options);

void write_gfa_file(const std::filesystem::path& path,
                    const StringGraph& graph, const GfaOptions& options);

}  // namespace lasagna::graph
