# Empty compiler generated dependencies file for lasagna_tests.
# This may be replaced when dependencies are built.
