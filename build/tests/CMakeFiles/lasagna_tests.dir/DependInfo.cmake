
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/compress_phase_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/compress_phase_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/compress_phase_test.cpp.o.d"
  "/root/repo/tests/containment_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/containment_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/containment_test.cpp.o.d"
  "/root/repo/tests/correction_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/correction_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/correction_test.cpp.o.d"
  "/root/repo/tests/dist_bsp_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/dist_bsp_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/dist_bsp_test.cpp.o.d"
  "/root/repo/tests/dist_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/dist_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/dist_test.cpp.o.d"
  "/root/repo/tests/evaluate_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/evaluate_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/evaluate_test.cpp.o.d"
  "/root/repo/tests/failure_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/failure_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/failure_test.cpp.o.d"
  "/root/repo/tests/fingerprint_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/fingerprint_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/fingerprint_test.cpp.o.d"
  "/root/repo/tests/gfa_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/gfa_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/gfa_test.cpp.o.d"
  "/root/repo/tests/gpu_property_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/gpu_property_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/gpu_property_test.cpp.o.d"
  "/root/repo/tests/gpu_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/gpu_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/gpu_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/map_phase_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/map_phase_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/map_phase_test.cpp.o.d"
  "/root/repo/tests/multifile_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/multifile_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/multifile_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/preprocess_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/preprocess_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/preprocess_test.cpp.o.d"
  "/root/repo/tests/reduce_phase_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/reduce_phase_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/reduce_phase_test.cpp.o.d"
  "/root/repo/tests/reduce_property_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/reduce_property_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/reduce_property_test.cpp.o.d"
  "/root/repo/tests/seq_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/seq_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/seq_test.cpp.o.d"
  "/root/repo/tests/sort_phase_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/sort_phase_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/sort_phase_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/lasagna_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/lasagna_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lasagna_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/lasagna_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lasagna_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lasagna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/lasagna_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/lasagna_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/lasagna_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lasagna_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lasagna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
