file(REMOVE_RECURSE
  "CMakeFiles/lasagna_gpu.dir/device.cpp.o"
  "CMakeFiles/lasagna_gpu.dir/device.cpp.o.d"
  "CMakeFiles/lasagna_gpu.dir/primitives.cpp.o"
  "CMakeFiles/lasagna_gpu.dir/primitives.cpp.o.d"
  "CMakeFiles/lasagna_gpu.dir/profile.cpp.o"
  "CMakeFiles/lasagna_gpu.dir/profile.cpp.o.d"
  "liblasagna_gpu.a"
  "liblasagna_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
