# Empty compiler generated dependencies file for lasagna_gpu.
# This may be replaced when dependencies are built.
