file(REMOVE_RECURSE
  "liblasagna_gpu.a"
)
