# Empty dependencies file for lasagna_dist.
# This may be replaced when dependencies are built.
