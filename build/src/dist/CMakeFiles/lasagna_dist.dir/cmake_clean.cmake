file(REMOVE_RECURSE
  "CMakeFiles/lasagna_dist.dir/active_message.cpp.o"
  "CMakeFiles/lasagna_dist.dir/active_message.cpp.o.d"
  "CMakeFiles/lasagna_dist.dir/cluster.cpp.o"
  "CMakeFiles/lasagna_dist.dir/cluster.cpp.o.d"
  "liblasagna_dist.a"
  "liblasagna_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
