file(REMOVE_RECURSE
  "liblasagna_dist.a"
)
