file(REMOVE_RECURSE
  "liblasagna_fingerprint.a"
)
