# Empty compiler generated dependencies file for lasagna_fingerprint.
# This may be replaced when dependencies are built.
