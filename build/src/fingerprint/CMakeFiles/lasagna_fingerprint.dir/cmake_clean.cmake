file(REMOVE_RECURSE
  "CMakeFiles/lasagna_fingerprint.dir/kernels.cpp.o"
  "CMakeFiles/lasagna_fingerprint.dir/kernels.cpp.o.d"
  "CMakeFiles/lasagna_fingerprint.dir/rabin_karp.cpp.o"
  "CMakeFiles/lasagna_fingerprint.dir/rabin_karp.cpp.o.d"
  "liblasagna_fingerprint.a"
  "liblasagna_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
