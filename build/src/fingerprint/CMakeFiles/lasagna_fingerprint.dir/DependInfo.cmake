
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/kernels.cpp" "src/fingerprint/CMakeFiles/lasagna_fingerprint.dir/kernels.cpp.o" "gcc" "src/fingerprint/CMakeFiles/lasagna_fingerprint.dir/kernels.cpp.o.d"
  "/root/repo/src/fingerprint/rabin_karp.cpp" "src/fingerprint/CMakeFiles/lasagna_fingerprint.dir/rabin_karp.cpp.o" "gcc" "src/fingerprint/CMakeFiles/lasagna_fingerprint.dir/rabin_karp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lasagna_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/lasagna_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/lasagna_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lasagna_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
