
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/containment.cpp" "src/baseline/CMakeFiles/lasagna_baseline.dir/containment.cpp.o" "gcc" "src/baseline/CMakeFiles/lasagna_baseline.dir/containment.cpp.o.d"
  "/root/repo/src/baseline/fm_index.cpp" "src/baseline/CMakeFiles/lasagna_baseline.dir/fm_index.cpp.o" "gcc" "src/baseline/CMakeFiles/lasagna_baseline.dir/fm_index.cpp.o.d"
  "/root/repo/src/baseline/sga.cpp" "src/baseline/CMakeFiles/lasagna_baseline.dir/sga.cpp.o" "gcc" "src/baseline/CMakeFiles/lasagna_baseline.dir/sga.cpp.o.d"
  "/root/repo/src/baseline/suffix_array.cpp" "src/baseline/CMakeFiles/lasagna_baseline.dir/suffix_array.cpp.o" "gcc" "src/baseline/CMakeFiles/lasagna_baseline.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lasagna_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lasagna_io.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/lasagna_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lasagna_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
