file(REMOVE_RECURSE
  "liblasagna_baseline.a"
)
