# Empty compiler generated dependencies file for lasagna_baseline.
# This may be replaced when dependencies are built.
