file(REMOVE_RECURSE
  "CMakeFiles/lasagna_baseline.dir/containment.cpp.o"
  "CMakeFiles/lasagna_baseline.dir/containment.cpp.o.d"
  "CMakeFiles/lasagna_baseline.dir/fm_index.cpp.o"
  "CMakeFiles/lasagna_baseline.dir/fm_index.cpp.o.d"
  "CMakeFiles/lasagna_baseline.dir/sga.cpp.o"
  "CMakeFiles/lasagna_baseline.dir/sga.cpp.o.d"
  "CMakeFiles/lasagna_baseline.dir/suffix_array.cpp.o"
  "CMakeFiles/lasagna_baseline.dir/suffix_array.cpp.o.d"
  "liblasagna_baseline.a"
  "liblasagna_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
