# Empty dependencies file for lasagna_io.
# This may be replaced when dependencies are built.
