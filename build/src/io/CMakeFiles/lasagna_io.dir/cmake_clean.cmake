file(REMOVE_RECURSE
  "CMakeFiles/lasagna_io.dir/fastq.cpp.o"
  "CMakeFiles/lasagna_io.dir/fastq.cpp.o.d"
  "CMakeFiles/lasagna_io.dir/file_stream.cpp.o"
  "CMakeFiles/lasagna_io.dir/file_stream.cpp.o.d"
  "CMakeFiles/lasagna_io.dir/io_stats.cpp.o"
  "CMakeFiles/lasagna_io.dir/io_stats.cpp.o.d"
  "CMakeFiles/lasagna_io.dir/tempdir.cpp.o"
  "CMakeFiles/lasagna_io.dir/tempdir.cpp.o.d"
  "liblasagna_io.a"
  "liblasagna_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
