
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/fastq.cpp" "src/io/CMakeFiles/lasagna_io.dir/fastq.cpp.o" "gcc" "src/io/CMakeFiles/lasagna_io.dir/fastq.cpp.o.d"
  "/root/repo/src/io/file_stream.cpp" "src/io/CMakeFiles/lasagna_io.dir/file_stream.cpp.o" "gcc" "src/io/CMakeFiles/lasagna_io.dir/file_stream.cpp.o.d"
  "/root/repo/src/io/io_stats.cpp" "src/io/CMakeFiles/lasagna_io.dir/io_stats.cpp.o" "gcc" "src/io/CMakeFiles/lasagna_io.dir/io_stats.cpp.o.d"
  "/root/repo/src/io/tempdir.cpp" "src/io/CMakeFiles/lasagna_io.dir/tempdir.cpp.o" "gcc" "src/io/CMakeFiles/lasagna_io.dir/tempdir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lasagna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
