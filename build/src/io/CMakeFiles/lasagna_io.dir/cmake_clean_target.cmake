file(REMOVE_RECURSE
  "liblasagna_io.a"
)
