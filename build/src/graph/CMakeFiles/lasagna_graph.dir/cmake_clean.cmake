file(REMOVE_RECURSE
  "CMakeFiles/lasagna_graph.dir/gfa.cpp.o"
  "CMakeFiles/lasagna_graph.dir/gfa.cpp.o.d"
  "CMakeFiles/lasagna_graph.dir/string_graph.cpp.o"
  "CMakeFiles/lasagna_graph.dir/string_graph.cpp.o.d"
  "CMakeFiles/lasagna_graph.dir/transitive.cpp.o"
  "CMakeFiles/lasagna_graph.dir/transitive.cpp.o.d"
  "CMakeFiles/lasagna_graph.dir/traverse.cpp.o"
  "CMakeFiles/lasagna_graph.dir/traverse.cpp.o.d"
  "liblasagna_graph.a"
  "liblasagna_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
