file(REMOVE_RECURSE
  "liblasagna_graph.a"
)
