
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/gfa.cpp" "src/graph/CMakeFiles/lasagna_graph.dir/gfa.cpp.o" "gcc" "src/graph/CMakeFiles/lasagna_graph.dir/gfa.cpp.o.d"
  "/root/repo/src/graph/string_graph.cpp" "src/graph/CMakeFiles/lasagna_graph.dir/string_graph.cpp.o" "gcc" "src/graph/CMakeFiles/lasagna_graph.dir/string_graph.cpp.o.d"
  "/root/repo/src/graph/transitive.cpp" "src/graph/CMakeFiles/lasagna_graph.dir/transitive.cpp.o" "gcc" "src/graph/CMakeFiles/lasagna_graph.dir/transitive.cpp.o.d"
  "/root/repo/src/graph/traverse.cpp" "src/graph/CMakeFiles/lasagna_graph.dir/traverse.cpp.o" "gcc" "src/graph/CMakeFiles/lasagna_graph.dir/traverse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lasagna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
