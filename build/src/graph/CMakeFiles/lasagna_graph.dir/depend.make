# Empty dependencies file for lasagna_graph.
# This may be replaced when dependencies are built.
