file(REMOVE_RECURSE
  "liblasagna_core.a"
)
