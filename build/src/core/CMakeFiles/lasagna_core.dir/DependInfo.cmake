
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compress_phase.cpp" "src/core/CMakeFiles/lasagna_core.dir/compress_phase.cpp.o" "gcc" "src/core/CMakeFiles/lasagna_core.dir/compress_phase.cpp.o.d"
  "/root/repo/src/core/map_phase.cpp" "src/core/CMakeFiles/lasagna_core.dir/map_phase.cpp.o" "gcc" "src/core/CMakeFiles/lasagna_core.dir/map_phase.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/lasagna_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/lasagna_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/reduce_phase.cpp" "src/core/CMakeFiles/lasagna_core.dir/reduce_phase.cpp.o" "gcc" "src/core/CMakeFiles/lasagna_core.dir/reduce_phase.cpp.o.d"
  "/root/repo/src/core/sort_phase.cpp" "src/core/CMakeFiles/lasagna_core.dir/sort_phase.cpp.o" "gcc" "src/core/CMakeFiles/lasagna_core.dir/sort_phase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lasagna_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lasagna_io.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/lasagna_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/lasagna_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/lasagna_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lasagna_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
