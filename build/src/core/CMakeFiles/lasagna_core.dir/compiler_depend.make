# Empty compiler generated dependencies file for lasagna_core.
# This may be replaced when dependencies are built.
