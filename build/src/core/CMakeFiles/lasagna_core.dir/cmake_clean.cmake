file(REMOVE_RECURSE
  "CMakeFiles/lasagna_core.dir/compress_phase.cpp.o"
  "CMakeFiles/lasagna_core.dir/compress_phase.cpp.o.d"
  "CMakeFiles/lasagna_core.dir/map_phase.cpp.o"
  "CMakeFiles/lasagna_core.dir/map_phase.cpp.o.d"
  "CMakeFiles/lasagna_core.dir/pipeline.cpp.o"
  "CMakeFiles/lasagna_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/lasagna_core.dir/reduce_phase.cpp.o"
  "CMakeFiles/lasagna_core.dir/reduce_phase.cpp.o.d"
  "CMakeFiles/lasagna_core.dir/sort_phase.cpp.o"
  "CMakeFiles/lasagna_core.dir/sort_phase.cpp.o.d"
  "liblasagna_core.a"
  "liblasagna_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
