# Empty compiler generated dependencies file for lasagna_seq.
# This may be replaced when dependencies are built.
