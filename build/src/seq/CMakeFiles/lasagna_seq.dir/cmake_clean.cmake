file(REMOVE_RECURSE
  "CMakeFiles/lasagna_seq.dir/correction.cpp.o"
  "CMakeFiles/lasagna_seq.dir/correction.cpp.o.d"
  "CMakeFiles/lasagna_seq.dir/datasets.cpp.o"
  "CMakeFiles/lasagna_seq.dir/datasets.cpp.o.d"
  "CMakeFiles/lasagna_seq.dir/dna.cpp.o"
  "CMakeFiles/lasagna_seq.dir/dna.cpp.o.d"
  "CMakeFiles/lasagna_seq.dir/evaluate.cpp.o"
  "CMakeFiles/lasagna_seq.dir/evaluate.cpp.o.d"
  "CMakeFiles/lasagna_seq.dir/genome.cpp.o"
  "CMakeFiles/lasagna_seq.dir/genome.cpp.o.d"
  "CMakeFiles/lasagna_seq.dir/preprocess.cpp.o"
  "CMakeFiles/lasagna_seq.dir/preprocess.cpp.o.d"
  "CMakeFiles/lasagna_seq.dir/read_store.cpp.o"
  "CMakeFiles/lasagna_seq.dir/read_store.cpp.o.d"
  "CMakeFiles/lasagna_seq.dir/simulator.cpp.o"
  "CMakeFiles/lasagna_seq.dir/simulator.cpp.o.d"
  "liblasagna_seq.a"
  "liblasagna_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
