
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/correction.cpp" "src/seq/CMakeFiles/lasagna_seq.dir/correction.cpp.o" "gcc" "src/seq/CMakeFiles/lasagna_seq.dir/correction.cpp.o.d"
  "/root/repo/src/seq/datasets.cpp" "src/seq/CMakeFiles/lasagna_seq.dir/datasets.cpp.o" "gcc" "src/seq/CMakeFiles/lasagna_seq.dir/datasets.cpp.o.d"
  "/root/repo/src/seq/dna.cpp" "src/seq/CMakeFiles/lasagna_seq.dir/dna.cpp.o" "gcc" "src/seq/CMakeFiles/lasagna_seq.dir/dna.cpp.o.d"
  "/root/repo/src/seq/evaluate.cpp" "src/seq/CMakeFiles/lasagna_seq.dir/evaluate.cpp.o" "gcc" "src/seq/CMakeFiles/lasagna_seq.dir/evaluate.cpp.o.d"
  "/root/repo/src/seq/genome.cpp" "src/seq/CMakeFiles/lasagna_seq.dir/genome.cpp.o" "gcc" "src/seq/CMakeFiles/lasagna_seq.dir/genome.cpp.o.d"
  "/root/repo/src/seq/preprocess.cpp" "src/seq/CMakeFiles/lasagna_seq.dir/preprocess.cpp.o" "gcc" "src/seq/CMakeFiles/lasagna_seq.dir/preprocess.cpp.o.d"
  "/root/repo/src/seq/read_store.cpp" "src/seq/CMakeFiles/lasagna_seq.dir/read_store.cpp.o" "gcc" "src/seq/CMakeFiles/lasagna_seq.dir/read_store.cpp.o.d"
  "/root/repo/src/seq/simulator.cpp" "src/seq/CMakeFiles/lasagna_seq.dir/simulator.cpp.o" "gcc" "src/seq/CMakeFiles/lasagna_seq.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lasagna_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lasagna_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
