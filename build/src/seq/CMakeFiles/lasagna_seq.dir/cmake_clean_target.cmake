file(REMOVE_RECURSE
  "liblasagna_seq.a"
)
