# Empty compiler generated dependencies file for lasagna_util.
# This may be replaced when dependencies are built.
