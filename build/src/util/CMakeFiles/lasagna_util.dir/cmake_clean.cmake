file(REMOVE_RECURSE
  "CMakeFiles/lasagna_util.dir/bitvector.cpp.o"
  "CMakeFiles/lasagna_util.dir/bitvector.cpp.o.d"
  "CMakeFiles/lasagna_util.dir/logging.cpp.o"
  "CMakeFiles/lasagna_util.dir/logging.cpp.o.d"
  "CMakeFiles/lasagna_util.dir/memory_tracker.cpp.o"
  "CMakeFiles/lasagna_util.dir/memory_tracker.cpp.o.d"
  "CMakeFiles/lasagna_util.dir/prime.cpp.o"
  "CMakeFiles/lasagna_util.dir/prime.cpp.o.d"
  "CMakeFiles/lasagna_util.dir/stats.cpp.o"
  "CMakeFiles/lasagna_util.dir/stats.cpp.o.d"
  "CMakeFiles/lasagna_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lasagna_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/lasagna_util.dir/timer.cpp.o"
  "CMakeFiles/lasagna_util.dir/timer.cpp.o.d"
  "liblasagna_util.a"
  "liblasagna_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagna_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
