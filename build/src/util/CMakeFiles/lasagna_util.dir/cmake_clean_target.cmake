file(REMOVE_RECURSE
  "liblasagna_util.a"
)
