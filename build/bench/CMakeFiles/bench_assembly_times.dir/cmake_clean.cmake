file(REMOVE_RECURSE
  "CMakeFiles/bench_assembly_times.dir/bench_assembly_times.cpp.o"
  "CMakeFiles/bench_assembly_times.dir/bench_assembly_times.cpp.o.d"
  "bench_assembly_times"
  "bench_assembly_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assembly_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
