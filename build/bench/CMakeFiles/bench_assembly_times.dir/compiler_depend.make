# Empty compiler generated dependencies file for bench_assembly_times.
# This may be replaced when dependencies are built.
