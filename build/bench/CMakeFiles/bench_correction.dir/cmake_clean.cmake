file(REMOVE_RECURSE
  "CMakeFiles/bench_correction.dir/bench_correction.cpp.o"
  "CMakeFiles/bench_correction.dir/bench_correction.cpp.o.d"
  "bench_correction"
  "bench_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
