file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_ablation.dir/bench_hybrid_ablation.cpp.o"
  "CMakeFiles/bench_hybrid_ablation.dir/bench_hybrid_ablation.cpp.o.d"
  "bench_hybrid_ablation"
  "bench_hybrid_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
