# Empty dependencies file for bench_hybrid_ablation.
# This may be replaced when dependencies are built.
