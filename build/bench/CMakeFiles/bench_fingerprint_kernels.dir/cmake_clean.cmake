file(REMOVE_RECURSE
  "CMakeFiles/bench_fingerprint_kernels.dir/bench_fingerprint_kernels.cpp.o"
  "CMakeFiles/bench_fingerprint_kernels.dir/bench_fingerprint_kernels.cpp.o.d"
  "bench_fingerprint_kernels"
  "bench_fingerprint_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fingerprint_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
