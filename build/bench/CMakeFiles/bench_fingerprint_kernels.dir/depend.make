# Empty dependencies file for bench_fingerprint_kernels.
# This may be replaced when dependencies are built.
