# Empty compiler generated dependencies file for bench_sort_gpus.
# This may be replaced when dependencies are built.
