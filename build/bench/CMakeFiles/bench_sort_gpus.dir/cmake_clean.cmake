file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_gpus.dir/bench_sort_gpus.cpp.o"
  "CMakeFiles/bench_sort_gpus.dir/bench_sort_gpus.cpp.o.d"
  "bench_sort_gpus"
  "bench_sort_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
