file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_blocksize.dir/bench_sort_blocksize.cpp.o"
  "CMakeFiles/bench_sort_blocksize.dir/bench_sort_blocksize.cpp.o.d"
  "bench_sort_blocksize"
  "bench_sort_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
