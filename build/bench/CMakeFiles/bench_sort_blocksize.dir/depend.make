# Empty dependencies file for bench_sort_blocksize.
# This may be replaced when dependencies are built.
