# Empty dependencies file for bacterial_assembly.
# This may be replaced when dependencies are built.
