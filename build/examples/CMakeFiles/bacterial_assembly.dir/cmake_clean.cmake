file(REMOVE_RECURSE
  "CMakeFiles/bacterial_assembly.dir/bacterial_assembly.cpp.o"
  "CMakeFiles/bacterial_assembly.dir/bacterial_assembly.cpp.o.d"
  "bacterial_assembly"
  "bacterial_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacterial_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
