file(REMOVE_RECURSE
  "CMakeFiles/distributed_assembly.dir/distributed_assembly.cpp.o"
  "CMakeFiles/distributed_assembly.dir/distributed_assembly.cpp.o.d"
  "distributed_assembly"
  "distributed_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
