# Empty dependencies file for distributed_assembly.
# This may be replaced when dependencies are built.
