file(REMOVE_RECURSE
  "CMakeFiles/assemble_fastq.dir/assemble_fastq.cpp.o"
  "CMakeFiles/assemble_fastq.dir/assemble_fastq.cpp.o.d"
  "assemble_fastq"
  "assemble_fastq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assemble_fastq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
