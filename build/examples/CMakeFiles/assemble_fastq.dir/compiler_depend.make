# Empty compiler generated dependencies file for assemble_fastq.
# This may be replaced when dependencies are built.
