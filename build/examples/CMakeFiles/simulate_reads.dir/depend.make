# Empty dependencies file for simulate_reads.
# This may be replaced when dependencies are built.
