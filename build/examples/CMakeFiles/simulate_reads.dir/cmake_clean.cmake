file(REMOVE_RECURSE
  "CMakeFiles/simulate_reads.dir/simulate_reads.cpp.o"
  "CMakeFiles/simulate_reads.dir/simulate_reads.cpp.o.d"
  "simulate_reads"
  "simulate_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
